#include "markov/transition.hpp"

#include <gtest/gtest.h>

#include "markov/gen.hpp"
#include "util/rng.hpp"

namespace vm = volsched::markov;
using vm::ProcState;

namespace {

vm::TransitionMatrix sample_matrix() {
    return vm::TransitionMatrix({{{0.90, 0.06, 0.04},
                                  {0.20, 0.70, 0.10},
                                  {0.50, 0.10, 0.40}}});
}

} // namespace

TEST(Transition, DefaultIsIdentity) {
    vm::TransitionMatrix id;
    EXPECT_TRUE(id.validate().empty());
    EXPECT_DOUBLE_EQ(id.p_uu(), 1.0);
    EXPECT_DOUBLE_EQ(id.p_ur(), 0.0);
    EXPECT_DOUBLE_EQ(id.p_dd(), 1.0);
}

TEST(Transition, AccessorsMatchEntries) {
    const auto m = sample_matrix();
    EXPECT_DOUBLE_EQ(m.p_uu(), 0.90);
    EXPECT_DOUBLE_EQ(m.p_ur(), 0.06);
    EXPECT_DOUBLE_EQ(m.p_ud(), 0.04);
    EXPECT_DOUBLE_EQ(m.p_ru(), 0.20);
    EXPECT_DOUBLE_EQ(m.p_rr(), 0.70);
    EXPECT_DOUBLE_EQ(m.p_rd(), 0.10);
    EXPECT_DOUBLE_EQ(m.p_du(), 0.50);
    EXPECT_DOUBLE_EQ(m.p_dr(), 0.10);
    EXPECT_DOUBLE_EQ(m.p_dd(), 0.40);
}

TEST(Transition, ValidateAcceptsStochastic) {
    EXPECT_TRUE(sample_matrix().validate().empty());
}

TEST(Transition, ValidateRejectsBadRowSum) {
    auto m = sample_matrix();
    m(ProcState::Up, ProcState::Up) = 0.5; // row now sums to 0.6
    EXPECT_FALSE(m.validate().empty());
}

TEST(Transition, ValidateRejectsNegativeEntry) {
    vm::TransitionMatrix m({{{1.1, -0.1, 0.0},
                             {0.0, 1.0, 0.0},
                             {0.0, 0.0, 1.0}}});
    EXPECT_FALSE(m.validate().empty());
}

TEST(Transition, PowerZeroIsIdentity) {
    const auto m = sample_matrix().power(0);
    EXPECT_DOUBLE_EQ(m.p_uu(), 1.0);
    EXPECT_DOUBLE_EQ(m.p_ur(), 0.0);
}

TEST(Transition, PowerOneIsSelf) {
    const auto m = sample_matrix().power(1);
    EXPECT_DOUBLE_EQ(m.p_uu(), 0.90);
    EXPECT_DOUBLE_EQ(m.p_rd(), 0.10);
}

TEST(Transition, PowerMatchesRepeatedMultiply) {
    const auto m = sample_matrix();
    auto manual = m;
    for (int i = 1; i < 7; ++i) manual = manual.multiply(m);
    const auto fast = m.power(7);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(fast(static_cast<ProcState>(i), static_cast<ProcState>(j)),
                        manual(static_cast<ProcState>(i), static_cast<ProcState>(j)),
                        1e-12);
}

TEST(Transition, PowersStayStochastic) {
    const auto m = sample_matrix().power(50);
    EXPECT_TRUE(m.validate(1e-9).empty());
}

TEST(Transition, ToStringMentionsEntries) {
    const auto s = sample_matrix().to_string();
    EXPECT_NE(s.find("0.9000"), std::string::npos);
}

// Property sweep: recipe-generated matrices are always valid and their
// powers remain stochastic.
class GeneratedMatrix : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedMatrix, RecipeMatrixIsValidStochastic) {
    volsched::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    const auto m = vm::generate_matrix(rng);
    EXPECT_TRUE(m.validate().empty());
    for (int i = 0; i < 3; ++i) {
        const auto s = static_cast<ProcState>(i);
        EXPECT_GE(m(s, s), 0.90);
        EXPECT_LE(m(s, s), 0.99);
    }
    // Off-diagonal split evenly.
    EXPECT_NEAR(m.p_ur(), m.p_ud(), 1e-12);
    EXPECT_NEAR(m.p_ru(), m.p_rd(), 1e-12);
    EXPECT_NEAR(m.p_du(), m.p_dr(), 1e-12);
    EXPECT_TRUE(m.power(100).validate(1e-8).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedMatrix, ::testing::Range(0, 20));
