#include "markov/chain.hpp"

#include <gtest/gtest.h>

#include <array>

#include "markov/gen.hpp"
#include "util/rng.hpp"

namespace vm = volsched::markov;
using vm::ProcState;

TEST(Chain, RejectsInvalidMatrix) {
    vm::TransitionMatrix bad({{{0.5, 0.0, 0.0},
                               {0.0, 1.0, 0.0},
                               {0.0, 0.0, 1.0}}});
    EXPECT_THROW(vm::MarkovChain{bad}, std::invalid_argument);
}

TEST(Chain, StationarySumsToOne) {
    volsched::util::Rng rng(3);
    const auto chain = vm::generate_chain(rng);
    const auto& pi = chain.stationary();
    EXPECT_NEAR(pi.pi_u + pi.pi_r + pi.pi_d, 1.0, 1e-12);
    EXPECT_GT(pi.pi_u, 0.0);
    EXPECT_GT(pi.pi_r, 0.0);
    EXPECT_GT(pi.pi_d, 0.0);
}

TEST(Chain, StationaryOfSymmetricChainIsUniform) {
    // Same self-probability and even splits for every state => uniform.
    vm::TransitionMatrix m({{{0.9, 0.05, 0.05},
                             {0.05, 0.9, 0.05},
                             {0.05, 0.05, 0.9}}});
    const vm::MarkovChain chain(m);
    EXPECT_NEAR(chain.stationary().pi_u, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(chain.stationary().pi_r, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(chain.stationary().pi_d, 1.0 / 3.0, 1e-12);
}

TEST(Chain, StationaryIsFixedPoint) {
    volsched::util::Rng rng(9);
    const auto chain = vm::generate_chain(rng);
    const auto& pi = chain.stationary();
    const auto& m = chain.matrix();
    const std::array<double, 3> cur = {pi.pi_u, pi.pi_r, pi.pi_d};
    for (int j = 0; j < 3; ++j) {
        double next = 0;
        for (int i = 0; i < 3; ++i)
            next += cur[i] * m(static_cast<ProcState>(i),
                               static_cast<ProcState>(j));
        EXPECT_NEAR(next, cur[j], 1e-10);
    }
}

TEST(Chain, StationaryIndexOperator) {
    volsched::util::Rng rng(11);
    const auto chain = vm::generate_chain(rng);
    const auto& pi = chain.stationary();
    EXPECT_DOUBLE_EQ(pi[ProcState::Up], pi.pi_u);
    EXPECT_DOUBLE_EQ(pi[ProcState::Reclaimed], pi.pi_r);
    EXPECT_DOUBLE_EQ(pi[ProcState::Down], pi.pi_d);
}

TEST(Chain, SamplingMatchesTransitionProbabilities) {
    volsched::util::Rng gen_rng(21);
    const auto chain = vm::generate_chain(gen_rng);
    volsched::util::Rng rng(22);
    std::array<int, 3> counts{};
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<int>(chain.sample_next(ProcState::Up, rng))];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), chain.matrix().p_uu(), 0.005);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), chain.matrix().p_ur(), 0.005);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), chain.matrix().p_ud(), 0.005);
}

TEST(Chain, LongRunOccupancyMatchesStationary) {
    volsched::util::Rng gen_rng(31);
    const auto chain = vm::generate_chain(gen_rng);
    volsched::util::Rng rng(32);
    std::array<long long, 3> counts{};
    ProcState s = ProcState::Up;
    const int n = 500000;
    for (int i = 0; i < n; ++i) {
        s = chain.sample_next(s, rng);
        ++counts[static_cast<int>(s)];
    }
    EXPECT_NEAR(counts[0] / static_cast<double>(n), chain.stationary().pi_u, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), chain.stationary().pi_r, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), chain.stationary().pi_d, 0.02);
}

TEST(Chain, SampleStationaryFrequencies) {
    volsched::util::Rng gen_rng(41);
    const auto chain = vm::generate_chain(gen_rng);
    volsched::util::Rng rng(42);
    std::array<int, 3> counts{};
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<int>(chain.sample_stationary(rng))];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), chain.stationary().pi_u, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), chain.stationary().pi_d, 0.01);
}

// Property sweep: direct linear solve == power iteration across many
// recipe-generated chains.
class StationaryProperty : public ::testing::TestWithParam<int> {};

TEST_P(StationaryProperty, DirectSolveMatchesPowerIteration) {
    volsched::util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    const auto chain = vm::generate_chain(rng);
    const auto direct = chain.stationary();
    const auto iterated = chain.stationary_power_iteration();
    EXPECT_NEAR(direct.pi_u, iterated.pi_u, 1e-9);
    EXPECT_NEAR(direct.pi_r, iterated.pi_r, 1e-9);
    EXPECT_NEAR(direct.pi_d, iterated.pi_d, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StationaryProperty, ::testing::Range(0, 25));

TEST(Chain, GenerateChainsProducesIndependentChains) {
    volsched::util::Rng rng(55);
    const auto chains = vm::generate_chains(5, rng);
    ASSERT_EQ(chains.size(), 5u);
    // Overwhelmingly unlikely that two independently drawn chains match.
    EXPECT_NE(chains[0].matrix().p_uu(), chains[1].matrix().p_uu());
}
