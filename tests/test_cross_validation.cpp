/// The strongest integration test in the suite: record an on-line engine
/// run (actions + per-slot states) and replay it through the *independent*
/// off-line model checker of Section 4.  Any divergence between the two
/// implementations of the execution model fails validation.
///
/// Replication is disabled (the validator requires each task to complete
/// exactly once) and runs are single-iteration (off-line instances model
/// one iteration).

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "markov/gen.hpp"
#include "offline/schedule.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vo = volsched::offline;

namespace {

/// Builds the offline instance + schedule from a recorded run.
struct Recorded {
    vo::OfflineInstance instance;
    vo::Schedule schedule;
};

Recorded to_offline(const vs::Platform& pf, const vs::Timeline& timeline,
                    const vs::ActionTrace& actions, int tasks,
                    long long makespan) {
    Recorded out;
    out.instance.platform = pf;
    out.instance.num_tasks = tasks;
    out.instance.horizon = static_cast<int>(makespan);
    out.instance.states.resize(static_cast<std::size_t>(pf.size()));
    out.schedule.actions.resize(static_cast<std::size_t>(pf.size()));
    for (int q = 0; q < pf.size(); ++q) {
        for (long long t = 0; t < makespan; ++t) {
            const char code = timeline.at(q, t);
            out.instance.states[q].push_back(
                code == 'd'   ? vm::ProcState::Down
                : code == 'r' ? vm::ProcState::Reclaimed
                              : vm::ProcState::Up);
            const auto& rec = actions.row(q)[static_cast<std::size_t>(t)];
            vo::SlotAction action;
            action.recv = rec.recv; // same -2/-1/task-id conventions
            action.compute = rec.compute;
            out.schedule.actions[q].push_back(action);
        }
    }
    return out;
}

} // namespace

class CrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidation, EngineRunPassesOfflineValidator) {
    const auto seed = static_cast<std::uint64_t>(GetParam());
    volsched::util::Rng rng(seed + 7000);
    const int p = 3 + static_cast<int>(rng.uniform_int(0, 7));
    const int tasks = 2 + static_cast<int>(rng.uniform_int(0, 8));
    vs::Platform pf;
    pf.ncom = 1 + static_cast<int>(rng.uniform_int(0, 3));
    pf.t_prog = 1 + static_cast<int>(rng.uniform_int(0, 7));
    pf.t_data = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int q = 0; q < p; ++q)
        pf.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 9)));
    const auto chains =
        vm::generate_chains(static_cast<std::size_t>(p), rng);

    vs::Timeline timeline;
    vs::ActionTrace actions;
    vs::EngineConfig cfg;
    cfg.iterations = 1;
    cfg.tasks_per_iteration = tasks;
    cfg.replica_cap = 0; // the validator forbids duplicate completions
    cfg.audit = true;
    cfg.max_slots = 500000;
    cfg.timeline = &timeline;
    cfg.actions = &actions;

    const auto sim = vs::Simulation::from_chains(pf, chains, cfg, seed);
    // Alternate heuristics across seeds for coverage.
    const auto& names = volsched::core::all_heuristic_names();
    const auto sched =
        volsched::core::make_scheduler(names[seed % names.size()]);
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);

    const auto rec =
        to_offline(pf, timeline, actions, tasks, metrics.makespan);
    const auto res = vo::validate(rec.instance, rec.schedule);
    EXPECT_TRUE(res.valid) << res.error << " (seed " << seed << ", "
                           << sched->name() << ")";
    EXPECT_TRUE(res.all_done);
    EXPECT_EQ(res.makespan, metrics.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Range(0, 34));

TEST(CrossValidation, DeterministicPipelineValidates) {
    // The canonical hand-derived pipeline also passes the model checker.
    vs::Timeline timeline;
    vs::ActionTrace actions;
    vs::EngineConfig cfg;
    cfg.iterations = 1;
    cfg.tasks_per_iteration = 2;
    cfg.replica_cap = 0;
    cfg.audit = true;
    cfg.timeline = &timeline;
    cfg.actions = &actions;
    const auto pf = vs::Platform::homogeneous(1, 3, 1, 2, 2);
    // Always-UP chain.
    const vm::MarkovChain chain(vm::TransitionMatrix({{{1, 0, 0},
                                                       {1, 0, 0},
                                                       {1, 0, 0}}}));
    const auto sim = vs::Simulation::from_chains(pf, {chain, }, cfg, 5);
    const auto sched = volsched::core::make_scheduler("mct");
    const auto metrics = sim.run(*sched);
    ASSERT_TRUE(metrics.completed);
    ASSERT_EQ(metrics.makespan, 10);
    const auto rec = to_offline(pf, timeline, actions, 2, metrics.makespan);
    const auto res = vo::validate(rec.instance, rec.schedule);
    EXPECT_TRUE(res.valid) << res.error;
    EXPECT_EQ(res.makespan, 10);
}
