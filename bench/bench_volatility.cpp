/// \file bench_volatility.cpp
/// Extension experiment: how does the heuristic ranking react to the
/// platform's volatility *itself* (the paper only varies task size via
/// wmin)?  We sweep the chain recipe's self-transition range: lower bounds
/// mean shorter UP/RECLAIMED/DOWN intervals, i.e. more state churn per
/// task.  Expectation by the paper's logic: at low volatility everything
/// converges (MCT suffices); as volatility rises, the failure-aware
/// heuristics (EMCT, UD) pull ahead — the same mechanism as Figure 2, seen
/// from the platform side instead of the task side.

#include <cstdio>

#include "exp/dfb.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ve = volsched::exp;
namespace vu = volsched::util;

int main(int argc, char** argv) {
    vu::Cli cli("bench_volatility",
                "dfb vs platform volatility (chain self-transition range)");
    cli.add_int("instances", 25, "instances per volatility level");
    cli.add_int("wmin", 4, "task-size parameter (fixed)");
    cli.add_int("seed", 31415, "master seed");
    if (!cli.parse(argc, argv)) return cli.exit_code();
    const int instances = static_cast<int>(cli.get_int("instances"));
    const int wmin = static_cast<int>(cli.get_int("wmin"));
    const auto seed0 = static_cast<std::uint64_t>(cli.get_int("seed"));

    const std::vector<std::string> heuristics = {"emct", "mct", "ud*",
                                                 "random2w"};
    struct Level {
        const char* label;
        double lo, hi;
    };
    const Level levels[] = {
        {"calm      [0.99, 0.999]", 0.99, 0.999},
        {"paper     [0.90, 0.99]", 0.90, 0.99},
        {"choppy    [0.80, 0.90]", 0.80, 0.90},
        {"frantic   [0.60, 0.80]", 0.60, 0.80},
    };

    std::vector<std::string> header = {"volatility"};
    for (const auto& h : heuristics) header.push_back(h + " dfb");
    vu::TextTable table(header);
    for (std::size_t c = 1; c < header.size(); ++c) table.align_right(c);

    for (const auto& level : levels) {
        ve::DfbTable dfb(heuristics.size());
        for (int i = 0; i < instances; ++i) {
            ve::Scenario sc;
            sc.p = 20;
            sc.tasks = 10;
            sc.ncom = 5;
            sc.wmin = wmin;
            sc.recipe.self_lo = level.lo;
            sc.recipe.self_hi = level.hi;
            sc.seed = seed0 + static_cast<std::uint64_t>(i);
            const auto rs = ve::realize(sc);
            ve::RunConfig rc;
            rc.iterations = 10;
            const auto out = ve::run_instance(rs, sc.tasks, heuristics, rc,
                                              seed0 * 3 + i);
            dfb.add_instance(out.makespans);
        }
        std::vector<std::string> row = {level.label};
        for (std::size_t h = 0; h < heuristics.size(); ++h)
            row.push_back(vu::TextTable::num(dfb.mean_dfb(h), 2));
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render("Extension — dfb vs platform volatility "
                                   "(wmin fixed at " +
                                   std::to_string(wmin) + ")")
                          .c_str());
    std::printf("(%d instances per level; lower self-transition bounds mean "
                "more churn)\n",
                instances);
    return 0;
}
