/// \file bench_ablation.cpp
/// Ablations of the design choices Section 6.1 discusses but does not plot:
///  1. Replica cap: the paper fixes two extra replicas, citing [16]; we
///     sweep cap in {0, 1, 2, 4} and report mean makespans.
///  2. Scheduler class: dynamic re-planning every slot (the paper's class)
///     versus the passive class that keeps a plan until a crash.
///  3. Informed beliefs: EMCT with true chains versus uninformed (belief-
///     free) operation, isolating the value of the Markov machinery.

#include <cstdio>

#include "exp/dfb.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ve = volsched::exp;
namespace vu = volsched::util;

namespace {

ve::Scenario base_scenario(std::uint64_t seed, int tasks, int wmin) {
    ve::Scenario sc;
    sc.p = 20;
    sc.tasks = tasks;
    sc.ncom = 5;
    sc.wmin = wmin;
    sc.seed = seed;
    return sc;
}

} // namespace

int main(int argc, char** argv) {
    vu::Cli cli("bench_ablation",
                "replication-cap, scheduler-class and belief ablations");
    cli.add_int("instances", 25, "instances per configuration");
    cli.add_int("seed", 777, "master seed");
    if (!cli.parse(argc, argv)) return cli.exit_code();
    const int instances = static_cast<int>(cli.get_int("instances"));
    const auto seed0 = static_cast<std::uint64_t>(cli.get_int("seed"));

    // ---- 1. Replica cap -------------------------------------------------
    std::printf("== Ablation: replica cap (m = 5 tasks, wmin = 4) ==\n");
    vu::TextTable caps({"cap", "mean makespan", "+/-95%", "replica wins"});
    for (std::size_t c = 1; c < 4; ++c) caps.align_right(c);
    for (int cap : {0, 1, 2, 4}) {
        vu::Accumulator acc;
        long long wins = 0;
        for (int i = 0; i < instances; ++i) {
            const auto sc = base_scenario(seed0 + i, /*tasks=*/5, /*wmin=*/4);
            const auto rs = ve::realize(sc);
            ve::RunConfig rc;
            rc.iterations = 10;
            rc.replica_cap = cap;
            const auto out =
                ve::run_instance(rs, sc.tasks, {"emct"}, rc, seed0 * 31 + i);
            acc.add(static_cast<double>(out.makespans[0]));
            wins += out.metrics[0].replica_wins;
        }
        caps.add_row({std::to_string(cap), vu::TextTable::num(acc.mean(), 1),
                      vu::TextTable::num(vu::ci95_halfwidth(acc), 1),
                      std::to_string(wins)});
    }
    std::printf("%s(the paper fixes cap = 2; gains should flatten there)\n\n",
                caps.render().c_str());

    // ---- 2. Scheduler classes (Section 6.1 taxonomy) ----------------------
    std::printf(
        "== Ablation: scheduler class (m = 10, wmin = 4, emct) ==\n");
    vu::TextTable cls({"class", "mean makespan", "+/-95%",
                       "proactive cancels"});
    for (std::size_t c = 1; c < 4; ++c) cls.align_right(c);
    const std::pair<const char*, volsched::sim::SchedulerClass> kClasses[] = {
        {"passive", volsched::sim::SchedulerClass::Passive},
        {"dynamic", volsched::sim::SchedulerClass::Dynamic},
        {"proactive", volsched::sim::SchedulerClass::Proactive},
    };
    for (const auto& [label, plan_class] : kClasses) {
        vu::Accumulator acc;
        long long cancels = 0;
        for (int i = 0; i < instances; ++i) {
            const auto sc = base_scenario(seed0 + 1000 + i, 10, 4);
            const auto rs = ve::realize(sc);
            ve::RunConfig rc;
            rc.iterations = 10;
            rc.plan_class = plan_class;
            const auto out =
                ve::run_instance(rs, sc.tasks, {"emct"}, rc, seed0 * 77 + i);
            acc.add(static_cast<double>(out.makespans[0]));
            cancels += out.metrics[0].proactive_cancellations;
        }
        cls.add_row({label, vu::TextTable::num(acc.mean(), 1),
                     vu::TextTable::num(vu::ci95_halfwidth(acc), 1),
                     std::to_string(cancels)});
    }
    std::printf("%s(Section 6.1 argues for the dynamic class; proactive adds "
                "aggressive un-enrolment of suspended workers)\n\n",
                cls.render().c_str());

    // ---- 3. Value of Markov beliefs --------------------------------------
    std::printf("== Ablation: EMCT with vs without Markov beliefs ==\n");
    vu::TextTable beliefs({"wmin", "emct dfb", "mct dfb"});
    beliefs.align_right(1);
    beliefs.align_right(2);
    for (int wmin : {1, 4, 8}) {
        ve::DfbTable table(2);
        for (int i = 0; i < instances; ++i) {
            const auto sc = base_scenario(seed0 + 2000 + i, 10, wmin);
            const auto rs = ve::realize(sc);
            ve::RunConfig rc;
            rc.iterations = 10;
            // emct uses beliefs; mct ignores them: the gap is the value of
            // the Theorem 2 machinery.
            const auto out = ve::run_instance(rs, sc.tasks, {"emct", "mct"},
                                              rc, seed0 * 13 + i);
            table.add_instance(out.makespans);
        }
        beliefs.add_row({std::to_string(wmin),
                         vu::TextTable::num(table.mean_dfb(0), 2),
                         vu::TextTable::num(table.mean_dfb(1), 2)});
    }
    std::printf("%s(the emct advantage should grow with wmin)\n\n",
                beliefs.render().c_str());

    // ---- 4. Extension heuristics vs the paper's best ----------------------
    std::printf("== Extension heuristics vs paper heuristics ==\n");
    const std::vector<std::string> ext = {"emct", "ud*", "hybrid",
                                          "thr50:emct", "thr25:emct"};
    vu::TextTable exttab({"wmin", "emct", "ud*", "hybrid", "thr50:emct",
                          "thr25:emct"});
    for (std::size_t c = 1; c < 6; ++c) exttab.align_right(c);
    for (int wmin : {2, 6, 10}) {
        ve::DfbTable table(ext.size());
        for (int i = 0; i < instances; ++i) {
            const auto sc = base_scenario(seed0 + 3000 + i, 10, wmin);
            const auto rs = ve::realize(sc);
            ve::RunConfig rc;
            rc.iterations = 10;
            const auto out =
                ve::run_instance(rs, sc.tasks, ext, rc, seed0 * 57 + i);
            table.add_instance(out.makespans);
        }
        std::vector<std::string> row = {std::to_string(wmin)};
        for (std::size_t h = 0; h < ext.size(); ++h)
            row.push_back(vu::TextTable::num(table.mean_dfb(h), 2));
        exttab.add_row(std::move(row));
    }
    std::printf("%s(hybrid folds UD's crash risk into EMCT's expectation; "
                "thrXX excludes low-pi_u processors)\n",
                exttab.render().c_str());
    return 0;
}
