/// \file bench_micro.cpp
/// google-benchmark micro-suite: cost of the Section 5 closed forms, chain
/// sampling, heuristic selection, and end-to-end engine throughput.  These
/// are the hot paths of the sweep harness; regressions here multiply
/// directly into campaign wall-clock time.
///
/// `--json <path>` additionally writes the shared machine-readable schema
/// of bench/report.hpp (name, iterations, slots/sec, wall time) — the
/// format the BENCH_*.json perf trajectory and the CI perf-smoke artifact
/// use.  All other flags are google-benchmark's own.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "report.hpp"

#include "api/registry.hpp"
#include "api/simulation_builder.hpp"
#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "markov/expectation.hpp"
#include "markov/gen.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace vm = volsched::markov;
namespace vs = volsched::sim;
namespace ve = volsched::exp;

namespace {

vm::TransitionMatrix bench_matrix() {
    volsched::util::Rng rng(12345);
    return vm::generate_matrix(rng);
}

void BM_EWorkload(benchmark::State& state) {
    const auto m = bench_matrix();
    double w = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(vm::e_workload(m, w));
        w = (w < 1e6) ? w + 1.0 : 1.0;
    }
}
BENCHMARK(BM_EWorkload);

void BM_PPlus(benchmark::State& state) {
    const auto m = bench_matrix();
    for (auto _ : state) benchmark::DoNotOptimize(vm::p_plus(m));
}
BENCHMARK(BM_PPlus);

void BM_PUdExact(benchmark::State& state) {
    const auto m = bench_matrix();
    const auto k = static_cast<unsigned>(state.range(0));
    for (auto _ : state) benchmark::DoNotOptimize(vm::p_ud_exact(m, k));
}
BENCHMARK(BM_PUdExact)->Arg(8)->Arg(64)->Arg(4096);

void BM_PUdApprox(benchmark::State& state) {
    const auto chain = vm::MarkovChain(bench_matrix());
    const auto& pi = chain.stationary();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            vm::p_ud_approx(chain.matrix(), pi.pi_u, pi.pi_r, 64.0));
}
BENCHMARK(BM_PUdApprox);

void BM_ChainSampling(benchmark::State& state) {
    const auto chain = vm::MarkovChain(bench_matrix());
    volsched::util::Rng rng(99);
    auto s = vm::ProcState::Up;
    for (auto _ : state) {
        s = chain.sample_next(s, rng);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_ChainSampling);

void BM_StationarySolve(benchmark::State& state) {
    volsched::util::Rng rng(7);
    const auto m = vm::generate_matrix(rng);
    for (auto _ : state) {
        vm::MarkovChain chain(m);
        benchmark::DoNotOptimize(chain.stationary().pi_u);
    }
}
BENCHMARK(BM_StationarySolve);

void BM_EngineRun(benchmark::State& state) {
    ve::Scenario sc;
    sc.p = 20;
    sc.tasks = static_cast<int>(state.range(0));
    sc.ncom = 5;
    sc.wmin = static_cast<int>(state.range(1));
    sc.seed = 31415;
    const auto rs = ve::realize(sc);
    vs::EngineConfig cfg;
    cfg.iterations = 10;
    cfg.tasks_per_iteration = sc.tasks;
    const auto sim = vs::Simulation::builder()
                         .platform(rs.platform)
                         .markov(rs.chains)
                         .config(cfg)
                         .seed(9)
                         .build();
    const auto sched = volsched::api::SchedulerRegistry::instance().make("emct*");
    long long slots = 0;
    for (auto _ : state) {
        const auto metrics = sim.run(*sched);
        slots += metrics.makespan;
        benchmark::DoNotOptimize(metrics.makespan);
    }
    state.SetItemsProcessed(slots); // slots simulated per second
}
BENCHMARK(BM_EngineRun)->Args({10, 1})->Args({40, 1})->Args({10, 5});

void BM_HeuristicSelectCost(benchmark::State& state) {
    // One full 17-heuristic instance at a mid-grid point: the unit of work
    // the sweep repeats hundreds of thousands of times at paper scale.
    ve::Scenario sc;
    sc.p = 20;
    sc.tasks = 20;
    sc.ncom = 10;
    sc.wmin = 2;
    sc.seed = 2718;
    const auto rs = ve::realize(sc);
    ve::RunConfig rc;
    rc.iterations = 10;
    const auto& names = volsched::core::all_heuristic_names();
    for (auto _ : state) {
        const auto out = ve::run_instance(rs, sc.tasks, names, rc, 55);
        benchmark::DoNotOptimize(out.makespans.front());
    }
}
BENCHMARK(BM_HeuristicSelectCost)->Unit(benchmark::kMillisecond);

void BM_RegistryResolveSpec(benchmark::State& state) {
    // Spec-string parse + registry lookup + construction of a two-stage
    // scheduler: the per-run overhead run_instance pays per heuristic.
    const auto& registry = volsched::api::SchedulerRegistry::instance();
    for (auto _ : state) {
        const auto sched = registry.make("thr(percent=50):emct*");
        benchmark::DoNotOptimize(sched.get());
    }
}
BENCHMARK(BM_RegistryResolveSpec);

/// google-benchmark 1.8 replaced Run::error_occurred with the Skipped
/// enum; detect which field this library version has so the suite builds
/// against both (CI's distro package and local installs may differ).
template <typename R, typename = void>
struct HasErrorOccurred : std::false_type {};
template <typename R>
struct HasErrorOccurred<R, std::void_t<decltype(&R::error_occurred)>>
    : std::true_type {};

template <typename R>
bool run_failed(const R& run) {
    if constexpr (HasErrorOccurred<R>::value)
        return run.error_occurred;
    else
        return static_cast<int>(run.skipped) != 0; // Skipped::NotSkipped == 0
}

/// Console reporting as usual, plus capture into the shared BenchRecord
/// schema for --json.
class CaptureReporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& runs) override {
        for (const Run& run : runs) {
            if (run_failed(run)) continue;
            volsched::benchtool::BenchRecord rec;
            rec.name = run.benchmark_name();
            rec.iterations = run.iterations;
            rec.wall_seconds = run.real_accumulated_time;
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end()) rec.slots_per_sec = it->second;
            records.push_back(std::move(rec));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<volsched::benchtool::BenchRecord> records;
};

} // namespace

int main(int argc, char** argv) {
    // Strip --json <path> / --json=<path> before google-benchmark rejects
    // it as an unknown flag.
    std::string json_path;
    std::vector<char*> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else {
            args.push_back(argv[i]);
        }
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!json_path.empty() &&
        !volsched::benchtool::write_bench_json(json_path, "bench_micro",
                                               reporter.records))
        return 1;
    return 0;
}
