/// \file bench_campaign.cpp
/// Campaign-layer throughput: how much the streaming sinks, checkpoint
/// manifests, and deterministic batch emission cost on top of the raw
/// in-memory sweep.  Runs the same grid twice — exp::run_sweep (all in
/// memory, no IO) and exp::run_campaign (JSONL sink + manifest every
/// batch) — and reports instances/second for both plus the overhead.
///
///   bench_campaign --scenarios 2 --trials 2 --checkpoint 4 --threads 0

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "report.hpp"
#include "volsched/volsched.hpp"

int main(int argc, char** argv) {
    using namespace volsched;
    using clock = std::chrono::steady_clock;

    util::Cli cli("bench_campaign",
                  "streaming-campaign overhead vs the in-memory sweep");
    cli.add_string("heuristics", "greedy", "'all', 'greedy', or a spec list");
    cli.add_int("scenarios", 2, "scenario draws per grid cell");
    cli.add_int("trials", 2, "trials per scenario");
    cli.add_int("checkpoint", 8, "jobs per durable checkpoint");
    cli.add_int("threads", 0, "worker threads (0: hardware)");
    cli.add_int("seed", 20110516, "master seed");
    cli.add_flag("csv", "also stream the CSV sink");
    cli.add_flag("keep", "keep the output directory (default: delete)");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    api::ExperimentBuilder experiment;
    experiment.heuristic_set(cli.get_string("heuristics"))
        .scenarios_per_cell(static_cast<int>(cli.get_int("scenarios")))
        .trials(static_cast<int>(cli.get_int("trials")))
        .threads(static_cast<std::size_t>(cli.get_int("threads")))
        .seed(static_cast<std::uint64_t>(cli.get_int("seed")));

    const auto dir = std::filesystem::temp_directory_path() /
                     "volsched_bench_campaign";
    std::filesystem::remove_all(dir);

    const auto t0 = clock::now();
    const auto sweep = experiment.run();
    const auto t1 = clock::now();
    const auto campaign = experiment.campaign()
                              .directory(dir)
                              .checkpoint_every(static_cast<int>(
                                  cli.get_int("checkpoint")))
                              .csv(cli.get_flag("csv"))
                              .fresh()
                              .run();
    const auto t2 = clock::now();

    const auto secs = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };
    const double sweep_s = secs(t0, t1);
    const double campaign_s = secs(t1, t2);
    const auto instances = static_cast<double>(sweep.overall.instances());
    const auto jsonl_bytes = std::filesystem::file_size(campaign.jsonl_path);

    util::TextTable table({"driver", "seconds", "instances/s", "output"});
    for (std::size_t c = 1; c < 4; ++c) table.align_right(c);
    table.add_row({"run_sweep (in-memory)", util::TextTable::num(sweep_s, 3),
                   util::TextTable::num(instances / sweep_s, 1), "-"});
    table.add_row({"run_campaign (jsonl" +
                       std::string(cli.get_flag("csv") ? "+csv" : "") +
                       ")",
                   util::TextTable::num(campaign_s, 3),
                   util::TextTable::num(instances / campaign_s, 1),
                   std::to_string(jsonl_bytes) + " B"});
    std::printf("%s", table.render("campaign throughput, " +
                                   std::to_string(static_cast<long long>(
                                       instances)) +
                                   " instances")
                          .c_str());
    std::printf("streaming overhead: %.1f%%\n",
                100.0 * (campaign_s - sweep_s) / sweep_s);

    if (!cli.get_flag("keep")) std::filesystem::remove_all(dir);
    else std::printf("kept %s\n", dir.string().c_str());
    return 0;
}
