/// \file bench_campaign.cpp
/// Campaign-layer throughput: how much the streaming sinks, checkpoint
/// manifests, and deterministic emission cost on top of the raw in-memory
/// sweep — and what the scale-out machinery buys back.  Runs the same grid
/// four ways:
///
///   run_sweep                 all in memory, no IO (the speed-of-light bar)
///   run_campaign (pipeline)   barrier-free completion pipeline (default
///                             execution mode): workers run ahead while the
///                             emitter overlaps sink writes + checkpoint
///                             fsyncs with compute
///   run_campaign (barrier)    the historical batch loop: parallel_for a
///                             batch, then serially emit + fsync it
///   run_parallel_campaign     the same grid split over --shards in-process
///                             shards on one shared pool (shard emitters
///                             fsync concurrently)
///
/// All four produce the same instance set, so instances/second is directly
/// comparable.  A checkpoint-frequent cadence (--checkpoint 1) makes the
/// runs fsync-bound — the regime where the pipeline's compute/IO overlap
/// and the parallel shards' concurrent emitters actually show up; a large
/// cadence measures pure emission overhead instead.
///
///   bench_campaign --scenarios 2 --trials 2 --checkpoint 1 --shards 3
///                  --json bench_campaign.json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "report.hpp"
#include "volsched/volsched.hpp"

int main(int argc, char** argv) {
    using namespace volsched;
    using clock = std::chrono::steady_clock;

    util::Cli cli("bench_campaign",
                  "streaming-campaign overhead and scale-out A/B vs the "
                  "in-memory sweep");
    cli.add_string("heuristics", "greedy", "'all', 'greedy', or a spec list");
    cli.add_int("scenarios", 2, "scenario draws per grid cell");
    cli.add_int("trials", 2, "trials per scenario");
    cli.add_int("checkpoint", 8,
                "jobs per durable checkpoint (1: fsync-bound regime)");
    cli.add_int("shards", 3, "in-process shards for the parallel run");
    cli.add_int("threads", 0, "worker threads (0: hardware)");
    cli.add_int("iterations", 0,
                "engine iterations per instance (0: builder default; 1 with "
                "--checkpoint 1 gives the fsync-dominated regime)");
    cli.add_int("processors", 0, "platform processors (0: builder default)");
    cli.add_int("seed", 20110516, "master seed");
    cli.add_int("repeat", 1,
                "measurement repetitions per driver; best (minimum) wall "
                "time wins, shielding the A/B from disk-latency noise");
    cli.add_flag("csv", "also stream the CSV sink");
    cli.add_flag("keep", "keep the output directories (default: delete)");
    cli.add_string("json", "", "write bench/report.hpp JSON to this path");
    cli.add_string("tag", "",
                   "suffix for bench record names (-<tag>), so records from "
                   "different regimes can coexist in one trajectory file");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    const int checkpoint = static_cast<int>(cli.get_int("checkpoint"));
    const int shards = static_cast<int>(cli.get_int("shards"));
    if (shards < 1) {
        std::fprintf(stderr, "error: --shards must be >= 1\n");
        return 2;
    }

    api::ExperimentBuilder experiment;
    experiment.heuristic_set(cli.get_string("heuristics"))
        .scenarios_per_cell(static_cast<int>(cli.get_int("scenarios")))
        .trials(static_cast<int>(cli.get_int("trials")))
        .threads(static_cast<std::size_t>(cli.get_int("threads")))
        .seed(static_cast<std::uint64_t>(cli.get_int("seed")));
    if (cli.get_int("iterations") > 0)
        experiment.iterations(static_cast<int>(cli.get_int("iterations")));
    if (cli.get_int("processors") > 0)
        experiment.processors(static_cast<int>(cli.get_int("processors")));

    const auto root = std::filesystem::temp_directory_path() /
                      "volsched_bench_campaign";
    std::filesystem::remove_all(root);
    const auto secs = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };
    auto campaign = [&](const char* sub) {
        return experiment.campaign()
            .directory(root / sub)
            .checkpoint_every(checkpoint)
            .csv(cli.get_flag("csv"))
            .fresh();
    };

    const int repeat =
        std::max(1, static_cast<int>(cli.get_int("repeat")));
    // Each driver runs `repeat` times interleaved round-robin (so a slow
    // phase of the machine penalizes every driver equally); the minimum
    // wall time per driver is reported.
    auto timed = [&](auto&& fn) {
        const auto a = clock::now();
        fn();
        return secs(a, clock::now());
    };
    double sweep_s = 0, piped_s = 0, barrier_s = 0, parallel_s = 0;
    auto best = [](double& slot, double measured) {
        slot = slot == 0 ? measured : std::min(slot, measured);
    };
    double instances = 0;
    std::uintmax_t jsonl_bytes = 0;
    bool complete = true;
    for (int r = 0; r < repeat; ++r) {
        best(sweep_s, timed([&] {
                 instances = static_cast<double>(
                     experiment.run().overall.instances());
             }));
        best(piped_s, timed([&] {
                 const auto piped = campaign("pipeline").run();
                 complete = complete && piped.complete;
                 jsonl_bytes = std::filesystem::file_size(piped.jsonl_path);
             }));
        best(barrier_s, timed([&] {
                 complete = complete &&
                            campaign("barrier").pipeline(false).run().complete;
             }));
        best(parallel_s, timed([&] {
                 complete = complete && campaign("parallel")
                                            .parallel(shards)
                                            .run_parallel()
                                            .complete;
             }));
    }
    const std::string ckpt = "ckpt" + std::to_string(checkpoint);
    const std::string shard_tag = std::to_string(shards) + "shard";

    util::TextTable table({"driver", "seconds", "instances/s", "output"});
    for (std::size_t c = 1; c < 4; ++c) table.align_right(c);
    table.add_row({"run_sweep (in-memory)", util::TextTable::num(sweep_s, 3),
                   util::TextTable::num(instances / sweep_s, 1), "-"});
    table.add_row({"run_campaign pipeline/" + ckpt,
                   util::TextTable::num(piped_s, 3),
                   util::TextTable::num(instances / piped_s, 1),
                   std::to_string(jsonl_bytes) + " B"});
    table.add_row({"run_campaign barrier/" + ckpt,
                   util::TextTable::num(barrier_s, 3),
                   util::TextTable::num(instances / barrier_s, 1),
                   std::to_string(jsonl_bytes) + " B"});
    table.add_row({"run_parallel_campaign " + shard_tag + "/" + ckpt,
                   util::TextTable::num(parallel_s, 3),
                   util::TextTable::num(instances / parallel_s, 1),
                   std::to_string(shards) + " sink sets"});
    std::printf("%s", table.render("campaign throughput, " +
                                   std::to_string(static_cast<long long>(
                                       instances)) +
                                   " instances")
                          .c_str());
    std::printf("streaming overhead (pipeline vs sweep): %+.1f%%\n",
                100.0 * (piped_s - sweep_s) / sweep_s);
    std::printf("pipeline vs barrier:                    %+.1f%%\n",
                100.0 * (barrier_s - piped_s) / barrier_s);
    std::printf("parallel %d-shard vs single shard:       %+.1f%%\n", shards,
                100.0 * (piped_s - parallel_s) / piped_s);

    if (!complete) {
        std::fprintf(stderr, "error: a campaign run did not complete\n");
        return 1;
    }

    int exit_code = 0;
    const std::string json = cli.get_string("json");
    if (!json.empty()) {
        const auto iters = static_cast<long long>(instances);
        std::string tag = cli.get_string("tag");
        if (!tag.empty()) tag = "-" + tag;
        const std::vector<benchtool::BenchRecord> records = {
            {"campaign/sweep-mem" + tag, iters, sweep_s,
             instances / sweep_s},
            {"campaign/pipeline-" + ckpt + tag, iters, piped_s,
             instances / piped_s},
            {"campaign/barrier-" + ckpt + tag, iters, barrier_s,
             instances / barrier_s},
            {"campaign/parallel-" + shard_tag + "-" + ckpt + tag, iters,
             parallel_s, instances / parallel_s},
        };
        if (!benchtool::write_bench_json(json, "bench_campaign", records))
            exit_code = 1;
    }

    if (!cli.get_flag("keep")) std::filesystem::remove_all(root);
    else std::printf("kept %s\n", root.string().c_str());
    return exit_code;
}
