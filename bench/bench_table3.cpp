/// \file bench_table3.cpp
/// Reproduces **Table 3** of the paper: contention-prone scenarios with
/// communication times scaled 5x and 10x (n = 20, ncom = 5, wmin = 1,
/// Tdata = 5 or 10, Tprog = 25 or 50).  The paper's expectation: the
/// contention-correcting (starred) heuristics dominate their plain
/// counterparts, UD* winning the 10x setting while plain MCT collapses.

#include <cstdio>

#include <optional>

#include "api/experiment_builder.hpp"
#include "exp/shape.hpp"
#include "report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace volsched;
    util::Cli cli("bench_table3",
                  "Table 3: contention-prone scenarios (comm x5 and x10)");
    cli.add_int("scenarios", 30, "scenarios per setting (paper: 100)");
    cli.add_int("trials", 3, "trials per scenario (paper: 10)");
    cli.add_int("threads", 0, "worker threads (0: hardware)");
    cli.add_int("seed", 20110516, "master seed");
    cli.add_flag("full", "paper-scale (100 scenarios x 10 trials)");
    cli.add_string("csv", "", "optional CSV output path prefix");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    std::optional<exp::SweepResult> x5, x10;

    for (const double factor : {5.0, 10.0}) {
        api::ExperimentBuilder experiment;
        experiment.greedy_heuristics()
            .tasks({20})
            .ncom({5})
            .wmin({1})
            .tdata_factor(factor)
            .tprog_factor(5.0 * factor)
            .scenarios_per_cell(
                cli.get_flag("full")
                    ? 100
                    : static_cast<int>(cli.get_int("scenarios")))
            .trials(cli.get_flag("full")
                        ? 10
                        : static_cast<int>(cli.get_int("trials")))
            .threads(static_cast<std::size_t>(cli.get_int("threads")))
            .seed(static_cast<std::uint64_t>(cli.get_int("seed")) +
                  static_cast<std::uint64_t>(factor));

        auto result = experiment.run();
        const auto& heuristics = experiment.heuristic_specs();
        char title[128];
        std::snprintf(title, sizeof title,
                      "Table 3 — communication times x%g", factor);
        benchtool::print_dfb_table(title, heuristics, result.overall,
                                   /*show_wins=*/false);
        if (const auto& prefix = cli.get_string("csv"); !prefix.empty())
            benchtool::write_dfb_csv(
                prefix + "_x" + std::to_string(static_cast<int>(factor)) +
                    ".csv",
                heuristics, result.overall);
        (factor == 5.0 ? x5 : x10).emplace(std::move(result));
    }

    const auto checks = exp::check_table3_shape(*x5, *x10);
    std::printf("shape verdicts vs the paper's Table 3 claims:\n%s",
                exp::render_checks(checks).c_str());
    return 0;
}
