/// \file bench_offline.cpp
/// Reproduces the Section 4 (off-line complexity) artifacts:
///  1. The MCT non-optimality counter-example under ncom = 1 (optimal = 9
///     slots; MCT's greedy first assignment provably cannot finish by 9).
///  2. The Theorem 1 gadget: the Figure 1 3SAT instance reduces to an
///     Off-Line instance that is schedulable in N = m(n+1) slots via the
///     constructive schedule of the proof.
///  3. Random small formulas: satisfiable <=> schedulable (exact solver).
///  4. Proposition 2: MCT == exact optimum when ncom is unbounded, checked
///     on random 2-state instances.

#include <cstdio>

#include "offline/exact.hpp"
#include "offline/mct.hpp"
#include "offline/sat.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace vo = volsched::offline;

namespace {

vo::OfflineInstance random_two_state(int p, int m, int horizon,
                                     std::uint64_t seed) {
    volsched::util::Rng rng(seed);
    vo::OfflineInstance inst;
    inst.num_tasks = m;
    inst.horizon = horizon;
    inst.platform.ncom = p;
    inst.platform.t_prog = 1 + static_cast<int>(rng.uniform_int(0, 1));
    inst.platform.t_data = 1;
    for (int q = 0; q < p; ++q) {
        inst.platform.w.push_back(1 + static_cast<int>(rng.uniform_int(0, 1)));
        std::vector<volsched::markov::ProcState> row;
        for (int t = 0; t < horizon; ++t)
            row.push_back(rng.bernoulli(0.75)
                              ? volsched::markov::ProcState::Up
                              : volsched::markov::ProcState::Reclaimed);
        inst.states.push_back(std::move(row));
    }
    return inst;
}

vo::Sat3 random_sat(int n, int m, std::uint64_t seed) {
    volsched::util::Rng rng(seed);
    vo::Sat3 sat;
    sat.num_vars = n;
    for (int c = 0; c < m; ++c) {
        std::vector<bool> sign(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) sign[v] = rng.bernoulli(0.5);
        vo::Clause clause;
        for (int k = 0; k < 3; ++k) {
            const int var = 1 + static_cast<int>(rng.uniform_int(0, n - 1));
            clause.lits[k] = sign[var - 1] ? var : -var;
        }
        sat.clauses.push_back(clause);
    }
    return sat;
}

} // namespace

int main(int argc, char** argv) {
    volsched::util::Cli cli("bench_offline",
                            "Section 4 off-line complexity artifacts");
    cli.add_int("sat-instances", 8, "random formulas for the equivalence check");
    cli.add_int("mct-instances", 10, "random instances for the MCT optimality check");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    // ---- 1. The MCT counter-example -----------------------------------
    std::printf("== MCT non-optimality under bounded ncom (Section 4) ==\n");
    vo::OfflineInstance example;
    example.platform.w = {2, 2};
    example.platform.ncom = 1;
    example.platform.t_prog = 2;
    example.platform.t_data = 2;
    example.num_tasks = 2;
    example.horizon = 9;
    example.states = vo::states_from_strings({"uuuuuurrr", "ruuuuuuuu"});
    const auto exact = vo::solve_exact(example);
    std::printf("exact optimum (ncom=1): %d slots (proven=%d, %lld nodes)\n",
                exact.makespan, exact.proven, exact.nodes);
    // MCT's greedy choice runs task 1 on P1 (it completes at slot 6, the
    // earliest); committing the channel to P1 delays P2's enrolment past
    // the point where both tasks can finish by slot 9.
    vo::OfflineInstance after_greedy = example;
    // Emulate the commitment: P1 is consumed by task 1 (its channel slots
    // 0..3 and compute 4..5); give the solver only the remainder by marking
    // P1 reclaimed afterwards and requiring the second task alone.
    after_greedy.num_tasks = 1;
    after_greedy.states[0] = vo::states_from_strings({"rrrrrrrrr"})[0];
    after_greedy.states[1] = vo::states_from_strings({"rrrruuuuu"})[0];
    const auto rest = vo::solve_exact(after_greedy);
    std::printf("after MCT's greedy start, remaining task feasible by 9: %s"
                " (paper: MCT needs 10)\n\n",
                rest.feasible ? "yes" : "no");

    // ---- 2. Figure 1 gadget -------------------------------------------
    std::printf("== Theorem 1 gadget (Figure 1 3SAT instance) ==\n");
    const auto fig1 = vo::figure1_instance();
    const auto inst = vo::sat_to_offline(fig1);
    std::vector<bool> witness;
    const bool satisfiable = vo::brute_force_sat(fig1, &witness);
    std::printf("formula satisfiable: %s, witness: ", satisfiable ? "yes" : "no");
    for (bool b : witness) std::printf("%d", b ? 1 : 0);
    const auto sched = vo::schedule_from_assignment(fig1, inst, witness);
    const auto val = vo::validate(inst, sched);
    std::printf("\nconstructive schedule valid: %s, makespan %d <= N = %d\n\n",
                val.valid && val.all_done ? "yes" : "no", val.makespan,
                inst.horizon);

    // ---- 3. Random formulas: satisfiable <=> schedulable ---------------
    std::printf("== Reduction equivalence on random formulas (n=2, m=3) ==\n");
    volsched::util::TextTable table({"seed", "satisfiable", "schedulable",
                                     "agree"});
    int agreements = 0;
    const int sats = static_cast<int>(cli.get_int("sat-instances"));
    for (int seed = 0; seed < sats; ++seed) {
        const auto sat = random_sat(2, 3, static_cast<std::uint64_t>(seed));
        const bool s = vo::brute_force_sat(sat);
        const auto e = vo::solve_exact(vo::sat_to_offline(sat), 20'000'000);
        const bool agree = e.proven && (e.feasible == s);
        agreements += agree;
        table.add_row({std::to_string(seed), s ? "yes" : "no",
                       e.feasible ? "yes" : "no", agree ? "yes" : "NO"});
    }
    std::printf("%s%d/%d agree\n\n", table.render().c_str(), agreements, sats);

    // ---- 4. Proposition 2: MCT optimal for unbounded ncom --------------
    std::printf("== MCT vs exact optimum, unbounded ncom (Proposition 2) ==\n");
    volsched::util::TextTable opt({"seed", "mct", "exact", "optimal"});
    int optimal = 0;
    const int mcts = static_cast<int>(cli.get_int("mct-instances"));
    for (int seed = 0; seed < mcts; ++seed) {
        const auto ri = random_two_state(2, 3, 16,
                                         static_cast<std::uint64_t>(seed));
        const auto mct = vo::mct_offline(ri);
        const auto ex = vo::solve_exact(ri, 10'000'000);
        const bool match =
            ex.proven && mct.feasible == ex.feasible &&
            (!mct.feasible || mct.makespan == ex.makespan);
        optimal += match;
        opt.add_row({std::to_string(seed),
                     mct.feasible ? std::to_string(mct.makespan) : "-",
                     ex.feasible ? std::to_string(ex.makespan) : "-",
                     match ? "yes" : "NO"});
    }
    std::printf("%s%d/%d optimal\n", opt.render().c_str(), optimal, mcts);
    return 0;
}
