#pragma once
/// \file report.hpp
/// Shared table / CSV / JSON rendering for the benchmark harnesses.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "exp/dfb.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace volsched::benchtool {

/// Prints a paper-style "Algorithm / Average dfb / #wins" table, sorted by
/// ascending mean dfb (best first), like the paper's Table 2 and Table 3.
inline void print_dfb_table(const std::string& title,
                            const std::vector<std::string>& heuristics,
                            const exp::DfbTable& table, bool show_wins) {
    std::vector<std::size_t> order(heuristics.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return table.mean_dfb(a) < table.mean_dfb(b);
    });

    std::vector<std::string> header = {"Algorithm", "Average dfb", "+/-95%"};
    if (show_wins) header.push_back("#wins");
    util::TextTable out(header);
    for (std::size_t c = 1; c < header.size(); ++c) out.align_right(c);
    for (std::size_t h : order) {
        std::vector<std::string> row = {
            heuristics[h], util::TextTable::num(table.mean_dfb(h), 2),
            util::TextTable::num(util::ci95_halfwidth(table.dfb(h)), 2)};
        if (show_wins) row.push_back(std::to_string(table.wins(h)));
        out.add_row(std::move(row));
    }
    std::printf("%s", out.render(title).c_str());
    std::printf("(%lld problem instances)\n\n",
                static_cast<long long>(table.instances()));
}

/// One measured benchmark: the machine-readable unit of the perf
/// trajectory (BENCH_*.json data points and the CI perf-smoke artifact).
struct BenchRecord {
    std::string name;         ///< benchmark id, e.g. "engine/shared-19h"
    long long iterations = 0; ///< measurement repetitions aggregated
    double wall_seconds = 0;  ///< total measured wall-clock time
    double slots_per_sec = 0; ///< simulated slots per second (0: n/a)
};

/// Writes benchmark records as one canonical JSON document:
///   {"volsched_bench":1,"bench":"<tool>","results":[
///     {"name":...,"iterations":...,"slots_per_sec":...,"wall_seconds":...}]}
/// The schema is shared by every harness with a --json flag, so the perf
/// trajectory stays diffable across tools and time.  Returns false (after
/// reporting to stderr) when the file cannot be written — callers turn
/// that into a nonzero exit so CI artifact uploads fail loudly at the
/// cause, not at the missing file.
inline bool write_bench_json(const std::string& path, const std::string& tool,
                             const std::vector<BenchRecord>& records) {
    std::string out = "{\"volsched_bench\":1,\"bench\":\"";
    out += util::json::escape(tool);
    out += "\",\"results\":[";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchRecord& r = records[i];
        if (i) out += ',';
        out += "\n  {\"name\":\"" + util::json::escape(r.name) + "\"";
        out += ",\"iterations\":" + std::to_string(r.iterations);
        out += ",\"slots_per_sec\":" + util::json::number(r.slots_per_sec);
        out += ",\"wall_seconds\":" + util::json::number(r.wall_seconds);
        out += '}';
    }
    out += "\n]}\n";
    std::ofstream file(path);
    file << out;
    file.flush();
    if (!file) {
        std::fprintf(stderr, "error: could not write %s\n", path.c_str());
        return false;
    }
    std::printf("wrote %s (%zu results)\n", path.c_str(), records.size());
    return true;
}

/// Dumps per-heuristic aggregates to CSV (one row per heuristic).
inline void write_dfb_csv(const std::string& path,
                          const std::vector<std::string>& heuristics,
                          const exp::DfbTable& table) {
    std::ofstream out(path);
    util::CsvWriter csv(out, {"heuristic", "mean_dfb", "ci95", "wins",
                              "mean_makespan", "instances"});
    for (std::size_t h = 0; h < heuristics.size(); ++h)
        csv.row({heuristics[h], util::CsvWriter::cell(table.mean_dfb(h)),
                 util::CsvWriter::cell(util::ci95_halfwidth(table.dfb(h))),
                 util::CsvWriter::cell(static_cast<long long>(table.wins(h))),
                 util::CsvWriter::cell(table.makespan(h).mean()),
                 util::CsvWriter::cell(
                     static_cast<long long>(table.instances()))});
    std::printf("wrote %s\n", path.c_str());
}

} // namespace volsched::benchtool
