/// \file bench_figure2.cpp
/// Reproduces **Figure 2** of the paper: average degradation-from-best as a
/// function of wmin (1..10) for the six heuristics the paper plots —
/// mct, mct*, emct, emct*, ud*, lw*.  The expected shape: the EMCT curves
/// drop below the MCT curves around wmin ~ 3, and UD* becomes competitive
/// at large wmin, where availability-state transitions dominate task
/// durations.

#include <cstdio>
#include <fstream>

#include "api/experiment_builder.hpp"
#include "exp/shape.hpp"
#include "report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace volsched;
    util::Cli cli("bench_figure2", "Figure 2: average dfb versus wmin");
    cli.add_int("scenarios", 2, "scenarios per (n, ncom, wmin) cell");
    cli.add_int("trials", 2, "trials per scenario");
    cli.add_int("threads", 0, "worker threads (0: hardware)");
    cli.add_int("seed", 20110516, "master seed");
    cli.add_flag("full", "paper-scale sweep (247 scenarios x 10 trials)");
    cli.add_string("csv", "", "optional CSV output path (long format)");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    api::ExperimentBuilder experiment;
    experiment
        .heuristics({"mct", "mct*", "emct", "emct*", "ud*", "lw*"})
        .scenarios_per_cell(cli.get_flag("full")
                                ? 247
                                : static_cast<int>(cli.get_int("scenarios")))
        .trials(cli.get_flag("full")
                    ? 10
                    : static_cast<int>(cli.get_int("trials")))
        .threads(static_cast<std::size_t>(cli.get_int("threads")))
        .seed(static_cast<std::uint64_t>(cli.get_int("seed")));

    const auto& heuristics = experiment.heuristic_specs();
    std::printf("bench_figure2: dfb vs wmin for %zu heuristics\n\n",
                heuristics.size());

    const auto result = experiment.run();

    std::vector<std::string> header = {"wmin"};
    for (const auto& h : heuristics) header.push_back(h);
    util::TextTable table(header);
    for (std::size_t c = 1; c < header.size(); ++c) table.align_right(c);
    for (const auto& [wmin, dfb] : result.by_wmin) {
        std::vector<std::string> row = {std::to_string(wmin)};
        for (std::size_t h = 0; h < heuristics.size(); ++h)
            row.push_back(util::TextTable::num(dfb.mean_dfb(h), 2));
        table.add_row(std::move(row));
    }
    std::printf("%s",
                table.render("Figure 2 — averaged dfb results vs. wmin")
                    .c_str());
    std::printf("(%lld problem instances total)\n\n",
                static_cast<long long>(result.overall.instances()));

    // Qualitative crossover report: largest wmin where MCT still beats
    // EMCT, mirroring the paper's "EMCT overtakes MCT beyond wmin ~ 3".
    int crossover = 0;
    for (const auto& [wmin, dfb] : result.by_wmin)
        if (dfb.mean_dfb(0) < dfb.mean_dfb(2)) crossover = wmin;
    std::printf("last wmin where mct <= emct: %d (paper: ~3)\n\n", crossover);

    const auto checks = exp::check_figure2_shape(result);
    std::printf("shape verdicts vs the paper's Figure 2 claims:\n%s",
                exp::render_checks(checks).c_str());

    if (const auto& path = cli.get_string("csv"); !path.empty()) {
        std::ofstream out(path);
        util::CsvWriter csv(out, {"wmin", "heuristic", "mean_dfb", "ci95"});
        for (const auto& [wmin, dfb] : result.by_wmin)
            for (std::size_t h = 0; h < heuristics.size(); ++h)
                csv.row({std::to_string(wmin), heuristics[h],
                         util::CsvWriter::cell(dfb.mean_dfb(h)),
                         util::CsvWriter::cell(
                             util::ci95_halfwidth(dfb.dfb(h)))});
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
