/// \file bench_table2.cpp
/// Reproduces **Table 2** of the paper: average degradation-from-best and
/// number of wins for all seventeen heuristics over the full Table 1 grid
/// (p = 20; n in {5,10,20,40}; ncom in {5,10,20}; wmin in 1..10;
/// Tdata = wmin; Tprog = 5*wmin; 10 iterations per run).
///
/// The paper uses 247 scenarios x 10 trials per cell (296,400 instances).
/// The default here is a reduced sweep sized for a laptop; pass
/// `--scenarios 247 --trials 10` (or `--full`) for paper scale.

#include <cstdio>

#include "api/experiment_builder.hpp"
#include "exp/shape.hpp"
#include "report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace volsched;
    util::Cli cli("bench_table2",
                  "Table 2: average dfb and #wins over the full grid");
    cli.add_int("scenarios", 2, "scenarios per (n, ncom, wmin) cell");
    cli.add_int("trials", 2, "trials per scenario");
    cli.add_int("threads", 0, "worker threads (0: hardware)");
    cli.add_int("seed", 20110516, "master seed");
    cli.add_flag("full", "paper-scale sweep (247 scenarios x 10 trials)");
    cli.add_flag("breakdown", "also print per-n and per-ncom tables");
    cli.add_string("csv", "", "optional CSV output path");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    api::ExperimentBuilder experiment;
    experiment.all_heuristics()
        .scenarios_per_cell(cli.get_flag("full")
                                ? 247
                                : static_cast<int>(cli.get_int("scenarios")))
        .trials(cli.get_flag("full")
                    ? 10
                    : static_cast<int>(cli.get_int("trials")))
        .threads(static_cast<std::size_t>(cli.get_int("threads")))
        .seed(static_cast<std::uint64_t>(cli.get_int("seed")));

    const exp::SweepConfig cfg = experiment.sweep_config();
    const auto& heuristics = experiment.heuristic_specs();
    std::printf("bench_table2: %d n-values x %d ncom x %d wmin x %d scenarios"
                " x %d trials, %zu heuristics\n\n",
                static_cast<int>(cfg.tasks_values.size()),
                static_cast<int>(cfg.ncom_values.size()),
                static_cast<int>(cfg.wmin_values.size()),
                cfg.scenarios_per_cell, cfg.trials_per_scenario,
                heuristics.size());

    const auto result = experiment.run();
    benchtool::print_dfb_table(
        "Table 2 — results over all problem instances", heuristics,
        result.overall, /*show_wins=*/true);

    const auto checks = exp::check_table2_shape(result);
    std::printf("shape verdicts vs the paper's Table 2 claims:\n%s\n",
                exp::render_checks(checks).c_str());

    if (cli.get_flag("breakdown")) {
        for (const auto& [n, table] : result.by_tasks)
            benchtool::print_dfb_table("breakdown — n = " + std::to_string(n),
                                       heuristics, table, /*show_wins=*/false);
        for (const auto& [ncom, table] : result.by_ncom)
            benchtool::print_dfb_table(
                "breakdown — ncom = " + std::to_string(ncom), heuristics,
                table, /*show_wins=*/false);
    }

    if (const auto& path = cli.get_string("csv"); !path.empty())
        benchtool::write_dfb_csv(path, heuristics, result.overall);
    return 0;
}
