/// \file bench_engine.cpp
/// Engine-throughput benchmark focused on what the realized-trace layer
/// buys (markov/realized_trace.hpp):
///
///  * *Sharing* — one instance run under the full 19-heuristic paper set
///    samples the availability realization once and replays it, where the
///    pre-trace engine re-sampled per run.  Measured as shared (trace cache
///    on, the default) vs resample (trace_cache(false), the historical
///    cost model), for both 1 heuristic and the full set.
///
///  * *Dead-slot skipping* — on volatile platforms the RLE realization
///    lets the engine fast-forward stretches where no worker is UP
///    (EngineConfig::skip_dead_slots).  Measured skip-on vs skip-off on a
///    low-self-transition chain recipe, with the reference slot loop pinned
///    so the legs keep their historical meaning.
///
///  * *Event-driven core* — a scoring-sparse regime (fewer tasks than
///    processors, no replicas, long task bodies) where the scheduler goes
///    idle between completions and the event core (EngineConfig::
///    event_driven) advances whole stretches in closed form.  Measured
///    event-on vs slot-loop on the absence-dominated desktop-grid fleet.
///
/// `--json <path>` writes the shared machine-readable schema of
/// bench/report.hpp — this benchmark seeds the repo's BENCH_*.json perf
/// trajectory and runs (with --smoke) as the CI perf-smoke step.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "report.hpp"

#include "api/registry.hpp"
#include "api/simulation_builder.hpp"
#include "core/factory.hpp"
#include "exp/scenario.hpp"
#include "markov/expectation_cache.hpp"
#include "sim/engine.hpp"
#include "trace/semi_markov.hpp"
#include "util/cli.hpp"

namespace va = volsched::api;
namespace vb = volsched::benchtool;
namespace vc = volsched::core;
namespace ve = volsched::exp;
namespace vm = volsched::markov;
namespace vs = volsched::sim;

namespace {

struct Measurement {
    double wall_seconds = 0;
    long long slots = 0;   ///< simulated slots (skipped dead slots included)
    long long skipped = 0; ///< slots elided by the dead-stretch fast-forward
    long long elided = 0;  ///< slots the event core advanced in closed form
    long long runs = 0;
};

/// Runs every heuristic in `scheds` on every realized scenario, `repeat`
/// times, with the given trace-cache and skip policies.  A fresh Simulation
/// per (scenario, repetition) keeps the comparison honest: `share` on pays
/// for sampling once per instance, off pays once per run.
Measurement measure(const std::vector<ve::RealizedScenario>& instances,
                    const std::vector<std::string>& heuristics,
                    const vs::EngineConfig& cfg, std::uint64_t seed,
                    int repeat, bool share, bool skip) {
    const auto& registry = va::SchedulerRegistry::instance();
    std::vector<std::unique_ptr<vs::Scheduler>> scheds;
    scheds.reserve(heuristics.size());
    for (const auto& name : heuristics) scheds.push_back(registry.make(name));

    Measurement m;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeat; ++r) {
        for (const auto& rs : instances) {
            auto builder = vs::Simulation::builder();
            builder.platform(rs.platform)
                .markov(rs.chains)
                .config(cfg)
                .skip_dead_slots(skip)
                .trace_cache(share)
                .seed(seed);
            const auto sim = builder.build();
            for (const auto& sched : scheds) {
                const auto metrics = sim.run(*sched);
                m.slots += metrics.makespan;
                m.skipped += metrics.dead_slots_skipped;
                ++m.runs;
            }
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    m.wall_seconds =
        std::chrono::duration<double>(stop - start).count();
    return m;
}

vb::BenchRecord to_record(const std::string& name, const Measurement& m) {
    vb::BenchRecord rec;
    rec.name = name;
    rec.iterations = m.runs;
    rec.wall_seconds = m.wall_seconds;
    rec.slots_per_sec =
        m.wall_seconds > 0 ? static_cast<double>(m.slots) / m.wall_seconds : 0;
    return rec;
}

/// Dead-stretch showcase: 3 night-shift desktop-grid workers under a
/// heavy-tailed semi-Markov process that keeps the fleet absent ~90% of
/// the time in runs of hundreds of slots (short UP bursts, long RECLAIMED
/// evenings, very long DOWN nights).  Beliefs are the equivalent-Markov
/// fit, as a real deployment would use.  Returns the wall time
/// with/without the fast-forward.
/// The night-shift fleet's availability process: short UP bursts, long
/// RECLAIMED evenings, very long DOWN nights — absent ~90% of the time.
/// `scale` stretches every sojourn mean by the same factor (a finer slot
/// grid over the same physical process), leaving the absence fraction
/// untouched.
volsched::trace::SemiMarkovParams desktop_grid_process(double scale = 1.0) {
    using volsched::trace::SojournDist;
    volsched::trace::SemiMarkovParams params;
    params.sojourn = {SojournDist::weibull_with_mean(0.7, 30.0 * scale),
                      SojournDist::weibull_with_mean(0.9, 80.0 * scale),
                      SojournDist::weibull_with_mean(0.8, 400.0 * scale)};
    params.jump[0] = {0.0, 0.5, 0.5};
    params.jump[1] = {0.5, 0.0, 0.5};
    params.jump[2] = {0.9, 0.1, 0.0};
    return params;
}

std::vector<std::unique_ptr<vm::AvailabilityModel>>
fleet_models(const volsched::trace::SemiMarkovParams& params, int procs) {
    std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
    models.reserve(static_cast<std::size_t>(procs));
    for (int q = 0; q < procs; ++q)
        models.push_back(
            std::make_unique<volsched::trace::SemiMarkovAvailability>(params));
    return models;
}

/// Shared measurement body for the desktop-grid regimes: `pf` and `cfg`
/// pick the workload, the engine knobs pick the stepping core under test.
/// With `shared` non-null, repetition r replays the pre-sampled snapshot
/// (*shared)[r] instead of sampling inside the timed region — the control
/// for core-vs-core comparisons, where sampling cost is not under test.
Measurement measure_fleet(
    const vs::Platform& pf, const vs::EngineConfig& cfg, std::uint64_t seed,
    std::uint64_t salt, int repeat, bool skip, bool event, double scale = 1.0,
    const std::vector<std::shared_ptr<vm::RealizedTraces>>* shared = nullptr) {
    const int procs = static_cast<int>(pf.w.size());
    const auto params = desktop_grid_process(scale);
    const std::vector<vm::MarkovChain> beliefs(
        static_cast<std::size_t>(procs),
        vm::MarkovChain(volsched::trace::SemiMarkovAvailability(params)
                            .equivalent_markov_matrix()));
    const auto sched = va::SchedulerRegistry::instance().make("emct");

    Measurement m;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeat; ++r) {
        auto builder = vs::Simulation::builder();
        builder.platform(pf)
            .models(fleet_models(params, procs))
            .beliefs(beliefs)
            .config(cfg)
            .skip_dead_slots(skip)
            .event_driven(event)
            .seed(volsched::util::mix_seed(seed, salt, r));
        if (shared) builder.realized((*shared)[static_cast<std::size_t>(r)]);
        const auto sim = builder.build();
        const auto metrics = sim.run(*sched);
        m.slots += metrics.makespan;
        m.skipped += metrics.dead_slots_skipped;
        m.elided += metrics.slots_elided;
        ++m.runs;
    }
    const auto stop = std::chrono::steady_clock::now();
    m.wall_seconds = std::chrono::duration<double>(stop - start).count();
    return m;
}

/// Dead-stretch showcase on the reference slot loop: 3 desktop-grid
/// workers, the historical skip-on vs skip-off comparison (the event core
/// subsumes the skip, so these legs pin event_driven off to keep their
/// meaning against older baselines).
Measurement measure_desktop_grid(const vs::EngineConfig& base_cfg,
                                 std::uint64_t seed, int repeat, bool skip) {
    const auto pf = vs::Platform::homogeneous(3, /*w_all=*/12,
                                              /*ncom=*/2, /*t_prog=*/10,
                                              /*t_data=*/2);
    return measure_fleet(pf, base_cfg, seed, 0xDEADULL, repeat, skip,
                         /*event=*/false);
}

/// Scoring-sparse showcase for the event core: the same absent-most-of-the-
/// time fleet, but with fewer tasks than processors, no replicas and long
/// task bodies, so once the pool drains the scheduler goes quiet and whole
/// compute/absence stretches advance in closed form.  Measured event core
/// vs the reference slot loop (skip on — its best historical configuration).
/// The scoring-sparse regime's fixed ingredients, shared by both timed
/// legs: workload shape plus one pre-sampled realization snapshot per
/// repetition, so the legs replay identical availability and the stepping
/// core is the only variable (sampling cost stays outside the timing).
struct SparseRegime {
    static constexpr std::uint64_t kSalt = 0x5BA5EULL;
    static constexpr double kScale = 50.0;
    vs::Platform pf;
    vs::EngineConfig cfg;
    std::vector<std::shared_ptr<vm::RealizedTraces>> instances;
};

SparseRegime prepare_desktop_grid_sparse(const vs::EngineConfig& base_cfg,
                                         std::uint64_t seed, int repeat) {
    SparseRegime rg;
    rg.pf = vs::Platform::homogeneous(3, /*w_all=*/3000, /*ncom=*/2,
                                      /*t_prog=*/10, /*t_data=*/2);
    rg.cfg = base_cfg;
    rg.cfg.tasks_per_iteration = 2; // fewer tasks than processors
    rg.cfg.replica_cap = 0;         // pool truly drains; no replica scans
    // Sojourns stretched 50x: same absent-dominated process on a finer
    // slot grid, so UP bursts are long enough to hold whole task bodies.
    const auto params = desktop_grid_process(SparseRegime::kScale);
    rg.instances.reserve(static_cast<std::size_t>(repeat));
    for (int r = 0; r < repeat; ++r)
        rg.instances.push_back(std::make_shared<vm::RealizedTraces>(
            fleet_models(params, 3),
            volsched::util::mix_seed(seed, SparseRegime::kSalt, r)));
    // One untimed warm pass materializes each snapshot out to its run's
    // horizon, so neither timed leg grows the realization.
    (void)measure_fleet(rg.pf, rg.cfg, seed, SparseRegime::kSalt, repeat,
                        /*skip=*/true, /*event=*/true, SparseRegime::kScale,
                        &rg.instances);
    return rg;
}

Measurement measure_desktop_grid_sparse(const SparseRegime& rg,
                                        std::uint64_t seed, int repeat,
                                        bool event) {
    return measure_fleet(rg.pf, rg.cfg, seed, SparseRegime::kSalt, repeat,
                        /*skip=*/true, event, SparseRegime::kScale,
                        &rg.instances);
}

std::vector<ve::RealizedScenario> realize_grid(int scenarios, int procs,
                                               int tasks, int ncom, int wmin,
                                               double self_lo, double self_hi,
                                               std::uint64_t seed);

/// Scoring-dominated regime: the dense paper recipe with far more tasks
/// than processors, a narrow master link (ncom) draining commits slowly,
/// and minimal per-task work, so the dynamic scheduler re-plans a large
/// pool nearly every slot and the wall time concentrates in the
/// heuristics' scoring loops (CT estimates plus the Markov expectations)
/// over a mostly-UP eligible set.  The regime's shape is fixed (not
/// CLI-derived, except under --smoke) so its records stay comparable
/// across benchmark runs.  Simulations are built once and their shared
/// realizations warmed by untimed passes, so both timed legs replay
/// identical availability; ExpectationCache::set_bypass provides the
/// same-binary A/B, the bypass leg running the pre-change scalar scoring
/// loops verbatim — per-element virtual dispatch, every Markov
/// expectation re-derived per score, random weights recomputed per pick.
struct ScoringRegime {
    vs::EngineConfig cfg;
    std::vector<vs::Simulation> sims;
};

Measurement measure_scoring(const ScoringRegime& rg,
                            const std::vector<std::string>& heuristics,
                            int repeat, bool bypass) {
    const auto& registry = va::SchedulerRegistry::instance();
    std::vector<std::unique_ptr<vs::Scheduler>> scheds;
    scheds.reserve(heuristics.size());
    for (const auto& name : heuristics)
        scheds.push_back(registry.make(name));

    vm::ExpectationCache::set_bypass(bypass);
    Measurement m;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeat; ++r) {
        for (const auto& sim : rg.sims) {
            for (const auto& sched : scheds) {
                const auto metrics = sim.run(*sched);
                m.slots += metrics.makespan;
                m.skipped += metrics.dead_slots_skipped;
                ++m.runs;
            }
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    vm::ExpectationCache::set_bypass(false);
    m.wall_seconds = std::chrono::duration<double>(stop - start).count();
    return m;
}

ScoringRegime prepare_scoring(const vs::EngineConfig& base_cfg,
                              int scenarios, int procs, int ncom,
                              std::uint64_t seed) {
    ScoringRegime rg;
    rg.cfg = base_cfg;
    rg.cfg.iterations = 3;
    rg.cfg.tasks_per_iteration = 4 * procs; // contended: every round scores
    const auto instances = realize_grid(
        scenarios, procs, rg.cfg.tasks_per_iteration, ncom, /*wmin=*/2, 0.90,
        0.99, volsched::util::mix_seed(seed, 0x5C0EULL, 0));
    rg.sims.reserve(instances.size());
    for (const auto& rs : instances) {
        auto builder = vs::Simulation::builder();
        builder.platform(rs.platform)
            .markov(rs.chains)
            .config(rg.cfg)
            .skip_dead_slots(true)
            .trace_cache(true)
            .seed(seed);
        rg.sims.push_back(builder.build());
    }
    return rg;
}

std::vector<ve::RealizedScenario> realize_grid(int scenarios, int procs,
                                               int tasks, int ncom, int wmin,
                                               double self_lo, double self_hi,
                                               std::uint64_t seed) {
    std::vector<ve::RealizedScenario> instances;
    instances.reserve(static_cast<std::size_t>(scenarios));
    for (int s = 0; s < scenarios; ++s) {
        ve::Scenario sc;
        sc.p = procs;
        sc.tasks = tasks;
        sc.ncom = ncom;
        sc.wmin = wmin;
        sc.recipe.self_lo = self_lo;
        sc.recipe.self_hi = self_hi;
        sc.seed = volsched::util::mix_seed(seed, 0xB3C4ULL, s);
        instances.push_back(ve::realize(sc));
    }
    return instances;
}

} // namespace

int main(int argc, char** argv) {
    volsched::util::Cli cli(
        "bench_engine",
        "Measures realized-trace sharing (1 vs full heuristic set per "
        "instance) and dead-slot skipping in the simulation engine");
    cli.add_int("procs", 20, "processors per platform");
    cli.add_int("tasks", 10, "tasks per iteration");
    cli.add_int("ncom", 5, "master transfer slots");
    cli.add_int("wmin", 2, "minimum per-task cost");
    cli.add_int("iterations", 10, "application iterations per run");
    cli.add_int("scenarios", 4, "scenario draws per measurement");
    cli.add_int("repeat", 3, "measurement repetitions");
    cli.add_int("seed", 1337, "master seed");
    cli.add_string("heuristics", "",
                   "comma-separated specs (default: the 19-spec paper set "
                   "plus extensions)");
    cli.add_string("json", "", "write machine-readable results to this path");
    cli.add_flag("smoke", "tiny configuration for CI perf smoke");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    int procs = static_cast<int>(cli.get_int("procs"));
    int scenarios = static_cast<int>(cli.get_int("scenarios"));
    int repeat = static_cast<int>(cli.get_int("repeat"));
    int iterations = static_cast<int>(cli.get_int("iterations"));
    const int tasks = static_cast<int>(cli.get_int("tasks"));
    const int ncom = static_cast<int>(cli.get_int("ncom"));
    const int wmin = static_cast<int>(cli.get_int("wmin"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    if (cli.get_flag("smoke")) {
        procs = 8;
        scenarios = 2;
        repeat = 1;
        iterations = 3;
    }

    std::vector<std::string> heuristics =
        volsched::util::split_list(cli.get_string("heuristics"));
    if (heuristics.empty()) {
        heuristics = vc::all_heuristic_names();
        const auto& ext = vc::extension_heuristic_names();
        heuristics.insert(heuristics.end(), ext.begin(), ext.end());
    }
    const std::vector<std::string> first_only = {heuristics.front()};
    const auto nh = std::to_string(heuristics.size());

    vs::EngineConfig cfg;
    cfg.iterations = iterations;
    cfg.tasks_per_iteration = tasks;

    std::printf("bench_engine: %d scenarios x %d repeats, p=%d, %zu "
                "heuristics\n\n",
                scenarios, repeat, procs, heuristics.size());

    // --- Sharing: the paper recipe (self-transition 0.90..0.99). ----------
    const auto paper = realize_grid(scenarios, procs, tasks, ncom, wmin,
                                    0.90, 0.99, seed);
    std::vector<vb::BenchRecord> records;
    // The 1-heuristic legs run the heuristic set's multiplier extra times
    // so every measurement covers comparable wall time.
    const int repeat_one = repeat * static_cast<int>(heuristics.size());
    const auto shared_full = measure(paper, heuristics, cfg, seed, repeat,
                                     /*share=*/true, /*skip=*/true);
    const auto resample_full = measure(paper, heuristics, cfg, seed, repeat,
                                       /*share=*/false, /*skip=*/true);
    const auto shared_one = measure(paper, first_only, cfg, seed, repeat_one,
                                    /*share=*/true, /*skip=*/true);
    const auto resample_one = measure(paper, first_only, cfg, seed,
                                      repeat_one, /*share=*/false,
                                      /*skip=*/true);
    records.push_back(to_record("engine/shared-" + nh + "h", shared_full));
    records.push_back(to_record("engine/resample-" + nh + "h", resample_full));
    records.push_back(to_record("engine/shared-1h", shared_one));
    records.push_back(to_record("engine/resample-1h", resample_one));

    // --- Skipping: a small desktop-grid fleet under heavy-tailed
    // semi-Markov availability, where "everyone is away overnight"
    // stretches run for thousands of slots — the gap the RLE fast-forward
    // jumps over in one step.
    const auto skip_on = measure_desktop_grid(cfg, seed, repeat_one,
                                              /*skip=*/true);
    const auto skip_off = measure_desktop_grid(cfg, seed, repeat_one,
                                               /*skip=*/false);
    records.push_back(to_record("engine/desktop-grid-skip-on", skip_on));
    records.push_back(to_record("engine/desktop-grid-skip-off", skip_off));

    // --- Event core: the scoring-sparse regime, where the slot loop still
    // steps every slot of a long computation but the event core jumps to
    // the next completion/state change in one arithmetic move.
    const auto sparse = prepare_desktop_grid_sparse(cfg, seed, repeat_one);
    const auto sparse_event = measure_desktop_grid_sparse(sparse, seed,
                                                          repeat_one,
                                                          /*event=*/true);
    const auto sparse_slot = measure_desktop_grid_sparse(sparse, seed,
                                                         repeat_one,
                                                         /*event=*/false);
    records.push_back(
        to_record("engine/desktop-grid-sparse-event", sparse_event));
    records.push_back(
        to_record("engine/desktop-grid-sparse-slot", sparse_slot));

    // --- Scoring: the dense contended regime where the wall time lives in
    // the heuristics' scoring loops — batched contiguous scoring with the
    // expectation cache on (the default) vs the pre-change scalar loops
    // (every Markov expectation re-derived per score), same binary, same
    // pre-sampled realizations.  Measured twice: over the full heuristic
    // set (the aggregate is diluted by heuristics that never consult the
    // Markov formulas) and over the P_UD-scoring subset, whose pow-heavy
    // closed form is what the cache actually memoizes.
    const int scoring_procs = cli.get_flag("smoke") ? procs : 96;
    const int scoring_scenarios = cli.get_flag("smoke") ? 1 : 2;
    const int scoring_ncom = 2;
    const std::vector<std::string> pud_set = {"ud", "ud*", "hybrid"};
    const auto scoring = prepare_scoring(cfg, scoring_scenarios,
                                         scoring_procs, scoring_ncom, seed);
    // Untimed passes materialize every shared realization out to the
    // longest heuristic's horizon before the timed legs replay them.
    (void)measure_scoring(scoring, heuristics, 1, /*bypass=*/false);
    (void)measure_scoring(scoring, pud_set, 1, /*bypass=*/false);
    const auto scoring_cached = measure_scoring(scoring, heuristics, repeat,
                                                /*bypass=*/false);
    const auto scoring_bypass = measure_scoring(scoring, heuristics, repeat,
                                                /*bypass=*/true);
    const auto pud_cached = measure_scoring(scoring, pud_set, repeat,
                                            /*bypass=*/false);
    const auto pud_bypass = measure_scoring(scoring, pud_set, repeat,
                                            /*bypass=*/true);
    records.push_back(
        to_record("engine/scoring-cached-" + nh + "h", scoring_cached));
    records.push_back(
        to_record("engine/scoring-bypass-" + nh + "h", scoring_bypass));
    records.push_back(to_record("engine/scoring-cached-pud3h", pud_cached));
    records.push_back(to_record("engine/scoring-bypass-pud3h", pud_bypass));

    volsched::util::TextTable table(
        {"Benchmark", "runs", "slots/sec", "wall s"});
    for (std::size_t c = 1; c <= 3; ++c) table.align_right(c);
    for (const auto& rec : records)
        table.add_row({rec.name, std::to_string(rec.iterations),
                       volsched::util::TextTable::num(rec.slots_per_sec, 0),
                       volsched::util::TextTable::num(rec.wall_seconds, 3)});
    std::printf("%s", table.render("Engine throughput").c_str());

    if (resample_full.wall_seconds > 0 && shared_full.wall_seconds > 0)
        std::printf("\nsharing speedup (%zu heuristics): %.2fx"
                    "   (1 heuristic: %.2fx)\n",
                    heuristics.size(),
                    resample_full.wall_seconds / shared_full.wall_seconds,
                    resample_one.wall_seconds / shared_one.wall_seconds);
    if (skip_off.wall_seconds > 0 && skip_on.slots > 0)
        std::printf("dead-slot skip speedup (desktop-grid fleet): %.2fx "
                    "(%.0f%% of slots skipped)\n",
                    skip_off.wall_seconds / skip_on.wall_seconds,
                    100.0 * static_cast<double>(skip_on.skipped) /
                        static_cast<double>(skip_on.slots));
    if (sparse_slot.wall_seconds > 0 && sparse_event.slots > 0)
        std::printf("event-core speedup (scoring-sparse fleet): %.2fx "
                    "(%.0f%% of slots elided)\n",
                    sparse_slot.wall_seconds / sparse_event.wall_seconds,
                    100.0 * static_cast<double>(sparse_event.elided) /
                        static_cast<double>(sparse_event.slots));
    if (scoring_cached.wall_seconds > 0 && scoring_bypass.wall_seconds > 0)
        std::printf("batched-scoring speedup (scoring-dominated regime, "
                    "full %s-spec set): %.2fx\n",
                    nh.c_str(),
                    scoring_bypass.wall_seconds /
                        scoring_cached.wall_seconds);
    if (pud_cached.wall_seconds > 0 && pud_bypass.wall_seconds > 0)
        std::printf("batched-scoring speedup (scoring-dominated regime, "
                    "P_UD-scoring subset): %.2fx\n\n",
                    pud_bypass.wall_seconds / pud_cached.wall_seconds);

    const std::string json = cli.get_string("json");
    if (!json.empty() && !vb::write_bench_json(json, "bench_engine", records))
        return 1;
    return 0;
}
