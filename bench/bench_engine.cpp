/// \file bench_engine.cpp
/// Engine-throughput benchmark focused on what the realized-trace layer
/// buys (markov/realized_trace.hpp):
///
///  * *Sharing* — one instance run under the full 19-heuristic paper set
///    samples the availability realization once and replays it, where the
///    pre-trace engine re-sampled per run.  Measured as shared (trace cache
///    on, the default) vs resample (trace_cache(false), the historical
///    cost model), for both 1 heuristic and the full set.
///
///  * *Dead-slot skipping* — on volatile platforms the RLE realization
///    lets the engine fast-forward stretches where no worker is UP
///    (EngineConfig::skip_dead_slots).  Measured skip-on vs skip-off on a
///    low-self-transition chain recipe.
///
/// `--json <path>` writes the shared machine-readable schema of
/// bench/report.hpp — this benchmark seeds the repo's BENCH_*.json perf
/// trajectory and runs (with --smoke) as the CI perf-smoke step.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "report.hpp"

#include "api/registry.hpp"
#include "api/simulation_builder.hpp"
#include "core/factory.hpp"
#include "exp/scenario.hpp"
#include "sim/engine.hpp"
#include "trace/semi_markov.hpp"
#include "util/cli.hpp"

namespace va = volsched::api;
namespace vb = volsched::benchtool;
namespace vc = volsched::core;
namespace ve = volsched::exp;
namespace vm = volsched::markov;
namespace vs = volsched::sim;

namespace {

struct Measurement {
    double wall_seconds = 0;
    long long slots = 0;   ///< simulated slots (skipped dead slots included)
    long long skipped = 0; ///< slots elided by the dead-stretch fast-forward
    long long runs = 0;
};

/// Runs every heuristic in `scheds` on every realized scenario, `repeat`
/// times, with the given trace-cache and skip policies.  A fresh Simulation
/// per (scenario, repetition) keeps the comparison honest: `share` on pays
/// for sampling once per instance, off pays once per run.
Measurement measure(const std::vector<ve::RealizedScenario>& instances,
                    const std::vector<std::string>& heuristics,
                    const vs::EngineConfig& cfg, std::uint64_t seed,
                    int repeat, bool share, bool skip) {
    const auto& registry = va::SchedulerRegistry::instance();
    std::vector<std::unique_ptr<vs::Scheduler>> scheds;
    scheds.reserve(heuristics.size());
    for (const auto& name : heuristics) scheds.push_back(registry.make(name));

    Measurement m;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeat; ++r) {
        for (const auto& rs : instances) {
            auto builder = vs::Simulation::builder();
            builder.platform(rs.platform)
                .markov(rs.chains)
                .config(cfg)
                .skip_dead_slots(skip)
                .trace_cache(share)
                .seed(seed);
            const auto sim = builder.build();
            for (const auto& sched : scheds) {
                const auto metrics = sim.run(*sched);
                m.slots += metrics.makespan;
                m.skipped += metrics.dead_slots_skipped;
                ++m.runs;
            }
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    m.wall_seconds =
        std::chrono::duration<double>(stop - start).count();
    return m;
}

vb::BenchRecord to_record(const std::string& name, const Measurement& m) {
    vb::BenchRecord rec;
    rec.name = name;
    rec.iterations = m.runs;
    rec.wall_seconds = m.wall_seconds;
    rec.slots_per_sec =
        m.wall_seconds > 0 ? static_cast<double>(m.slots) / m.wall_seconds : 0;
    return rec;
}

/// Dead-stretch showcase: 3 night-shift desktop-grid workers under a
/// heavy-tailed semi-Markov process that keeps the fleet absent ~90% of
/// the time in runs of hundreds of slots (short UP bursts, long RECLAIMED
/// evenings, very long DOWN nights).  Beliefs are the equivalent-Markov
/// fit, as a real deployment would use.  Returns the wall time
/// with/without the fast-forward.
Measurement measure_desktop_grid(const vs::EngineConfig& base_cfg,
                                 std::uint64_t seed, int repeat, bool skip) {
    using volsched::trace::SojournDist;
    constexpr int kProcs = 3;
    const auto pf = vs::Platform::homogeneous(kProcs, /*w_all=*/12,
                                              /*ncom=*/2, /*t_prog=*/10,
                                              /*t_data=*/2);
    volsched::trace::SemiMarkovParams params;
    params.sojourn = {SojournDist::weibull_with_mean(0.7, 30.0),
                      SojournDist::weibull_with_mean(0.9, 80.0),
                      SojournDist::weibull_with_mean(0.8, 400.0)};
    params.jump[0] = {0.0, 0.5, 0.5};
    params.jump[1] = {0.5, 0.0, 0.5};
    params.jump[2] = {0.9, 0.1, 0.0};
    const std::vector<vm::MarkovChain> beliefs(
        kProcs, vm::MarkovChain(volsched::trace::SemiMarkovAvailability(params)
                                    .equivalent_markov_matrix()));
    const auto sched = va::SchedulerRegistry::instance().make("emct");

    vs::EngineConfig cfg = base_cfg;
    Measurement m;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeat; ++r) {
        std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
        models.reserve(kProcs);
        for (int q = 0; q < kProcs; ++q)
            models.push_back(
                std::make_unique<volsched::trace::SemiMarkovAvailability>(
                    params));
        auto builder = vs::Simulation::builder();
        builder.platform(pf)
            .models(std::move(models))
            .beliefs(beliefs)
            .config(cfg)
            .skip_dead_slots(skip)
            .seed(volsched::util::mix_seed(seed, 0xDEADULL, r));
        const auto sim = builder.build();
        const auto metrics = sim.run(*sched);
        m.slots += metrics.makespan;
        m.skipped += metrics.dead_slots_skipped;
        ++m.runs;
    }
    const auto stop = std::chrono::steady_clock::now();
    m.wall_seconds = std::chrono::duration<double>(stop - start).count();
    return m;
}

std::vector<ve::RealizedScenario> realize_grid(int scenarios, int procs,
                                               int tasks, int ncom, int wmin,
                                               double self_lo, double self_hi,
                                               std::uint64_t seed) {
    std::vector<ve::RealizedScenario> instances;
    instances.reserve(static_cast<std::size_t>(scenarios));
    for (int s = 0; s < scenarios; ++s) {
        ve::Scenario sc;
        sc.p = procs;
        sc.tasks = tasks;
        sc.ncom = ncom;
        sc.wmin = wmin;
        sc.recipe.self_lo = self_lo;
        sc.recipe.self_hi = self_hi;
        sc.seed = volsched::util::mix_seed(seed, 0xB3C4ULL, s);
        instances.push_back(ve::realize(sc));
    }
    return instances;
}

} // namespace

int main(int argc, char** argv) {
    volsched::util::Cli cli(
        "bench_engine",
        "Measures realized-trace sharing (1 vs full heuristic set per "
        "instance) and dead-slot skipping in the simulation engine");
    cli.add_int("procs", 20, "processors per platform");
    cli.add_int("tasks", 10, "tasks per iteration");
    cli.add_int("ncom", 5, "master transfer slots");
    cli.add_int("wmin", 2, "minimum per-task cost");
    cli.add_int("iterations", 10, "application iterations per run");
    cli.add_int("scenarios", 4, "scenario draws per measurement");
    cli.add_int("repeat", 3, "measurement repetitions");
    cli.add_int("seed", 1337, "master seed");
    cli.add_string("heuristics", "",
                   "comma-separated specs (default: the 19-spec paper set "
                   "plus extensions)");
    cli.add_string("json", "", "write machine-readable results to this path");
    cli.add_flag("smoke", "tiny configuration for CI perf smoke");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    int procs = static_cast<int>(cli.get_int("procs"));
    int scenarios = static_cast<int>(cli.get_int("scenarios"));
    int repeat = static_cast<int>(cli.get_int("repeat"));
    int iterations = static_cast<int>(cli.get_int("iterations"));
    const int tasks = static_cast<int>(cli.get_int("tasks"));
    const int ncom = static_cast<int>(cli.get_int("ncom"));
    const int wmin = static_cast<int>(cli.get_int("wmin"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    if (cli.get_flag("smoke")) {
        procs = 8;
        scenarios = 2;
        repeat = 1;
        iterations = 3;
    }

    std::vector<std::string> heuristics =
        volsched::util::split_list(cli.get_string("heuristics"));
    if (heuristics.empty()) {
        heuristics = vc::all_heuristic_names();
        const auto& ext = vc::extension_heuristic_names();
        heuristics.insert(heuristics.end(), ext.begin(), ext.end());
    }
    const std::vector<std::string> first_only = {heuristics.front()};
    const auto nh = std::to_string(heuristics.size());

    vs::EngineConfig cfg;
    cfg.iterations = iterations;
    cfg.tasks_per_iteration = tasks;

    std::printf("bench_engine: %d scenarios x %d repeats, p=%d, %zu "
                "heuristics\n\n",
                scenarios, repeat, procs, heuristics.size());

    // --- Sharing: the paper recipe (self-transition 0.90..0.99). ----------
    const auto paper = realize_grid(scenarios, procs, tasks, ncom, wmin,
                                    0.90, 0.99, seed);
    std::vector<vb::BenchRecord> records;
    // The 1-heuristic legs run the heuristic set's multiplier extra times
    // so every measurement covers comparable wall time.
    const int repeat_one = repeat * static_cast<int>(heuristics.size());
    const auto shared_full = measure(paper, heuristics, cfg, seed, repeat,
                                     /*share=*/true, /*skip=*/true);
    const auto resample_full = measure(paper, heuristics, cfg, seed, repeat,
                                       /*share=*/false, /*skip=*/true);
    const auto shared_one = measure(paper, first_only, cfg, seed, repeat_one,
                                    /*share=*/true, /*skip=*/true);
    const auto resample_one = measure(paper, first_only, cfg, seed,
                                      repeat_one, /*share=*/false,
                                      /*skip=*/true);
    records.push_back(to_record("engine/shared-" + nh + "h", shared_full));
    records.push_back(to_record("engine/resample-" + nh + "h", resample_full));
    records.push_back(to_record("engine/shared-1h", shared_one));
    records.push_back(to_record("engine/resample-1h", resample_one));

    // --- Skipping: a small desktop-grid fleet under heavy-tailed
    // semi-Markov availability, where "everyone is away overnight"
    // stretches run for thousands of slots — the gap the RLE fast-forward
    // jumps over in one step.
    const auto skip_on = measure_desktop_grid(cfg, seed, repeat_one,
                                              /*skip=*/true);
    const auto skip_off = measure_desktop_grid(cfg, seed, repeat_one,
                                               /*skip=*/false);
    records.push_back(to_record("engine/desktop-grid-skip-on", skip_on));
    records.push_back(to_record("engine/desktop-grid-skip-off", skip_off));

    volsched::util::TextTable table(
        {"Benchmark", "runs", "slots/sec", "wall s"});
    for (std::size_t c = 1; c <= 3; ++c) table.align_right(c);
    for (const auto& rec : records)
        table.add_row({rec.name, std::to_string(rec.iterations),
                       volsched::util::TextTable::num(rec.slots_per_sec, 0),
                       volsched::util::TextTable::num(rec.wall_seconds, 3)});
    std::printf("%s", table.render("Engine throughput").c_str());

    if (resample_full.wall_seconds > 0 && shared_full.wall_seconds > 0)
        std::printf("\nsharing speedup (%zu heuristics): %.2fx"
                    "   (1 heuristic: %.2fx)\n",
                    heuristics.size(),
                    resample_full.wall_seconds / shared_full.wall_seconds,
                    resample_one.wall_seconds / shared_one.wall_seconds);
    if (skip_off.wall_seconds > 0 && skip_on.slots > 0)
        std::printf("dead-slot skip speedup (desktop-grid fleet): %.2fx "
                    "(%.0f%% of slots skipped)\n\n",
                    skip_off.wall_seconds / skip_on.wall_seconds,
                    100.0 * static_cast<double>(skip_on.skipped) /
                        static_cast<double>(skip_on.slots));

    const std::string json = cli.get_string("json");
    if (!json.empty() && !vb::write_bench_json(json, "bench_engine", records))
        return 1;
    return 0;
}
