/// \file bench_traces.cpp
/// The paper's Section 8 extension: challenge the Markov assumption.  The
/// platform's availability follows a heavy-tailed semi-Markov (Weibull)
/// process; the heuristics' beliefs are Markov chains fitted from recorded
/// histories of each processor.  The question the paper poses: does the
/// failure-aware heuristic ranking survive when the memoryless assumption
/// is violated?

#include <algorithm>
#include <cstdio>
#include <memory>

#include "api/registry.hpp"
#include "api/simulation_builder.hpp"
#include "exp/dfb.hpp"
#include "sim/engine.hpp"
#include "trace/empirical.hpp"
#include "trace/semi_markov.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace vs = volsched::sim;
namespace vm = volsched::markov;
namespace vt = volsched::trace;
namespace vu = volsched::util;

int main(int argc, char** argv) {
    vu::Cli cli("bench_traces",
                "heuristic ranking under non-Markov (semi-Markov) availability");
    cli.add_int("instances", 20, "number of platform draws");
    cli.add_int("mean-up", 120, "mean UP sojourn in slots");
    cli.add_int("seed", 4242, "master seed");
    cli.add_flag("lognormal", "use lognormal instead of Weibull sojourns");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    const bool lognormal = cli.get_flag("lognormal");
    const int instances = static_cast<int>(cli.get_int("instances"));
    const double mean_up = static_cast<double>(cli.get_int("mean-up"));
    const auto seed0 = static_cast<std::uint64_t>(cli.get_int("seed"));

    const std::vector<std::string> heuristics = {
        "emct", "emct*", "mct", "mct*", "ud*", "lw*", "random2w", "random"};
    volsched::exp::DfbTable table(heuristics.size());

    for (int i = 0; i < instances; ++i) {
        const std::uint64_t seed = vu::mix_seed(seed0, i);
        vu::Rng rng(seed);
        const int p = 20;
        vs::Platform pf;
        pf.ncom = 5;
        pf.t_prog = 20;
        pf.t_data = 4;
        std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
        std::vector<vm::MarkovChain> beliefs;
        for (int q = 0; q < p; ++q) {
            pf.w.push_back(4 + static_cast<int>(rng.uniform_int(0, 36)));
            const double scaled_mean = mean_up * rng.uniform(0.5, 1.5);
            const auto params =
                lognormal ? vt::desktop_grid_params_lognormal(scaled_mean)
                          : vt::desktop_grid_params(scaled_mean);
            vt::SemiMarkovAvailability proto(params);
            // Fit a Markov belief from a recorded history, as a field
            // deployment would.
            vu::Rng fit_rng(vu::mix_seed(seed, q, 0xF17));
            const auto history = vt::record(proto, 30000, fit_rng);
            beliefs.emplace_back(vt::fit_markov({history}));
            models.push_back(
                std::make_unique<vt::SemiMarkovAvailability>(params));
        }
        const auto sim = vs::Simulation::builder()
                             .platform(pf)
                             .models(std::move(models))
                             .beliefs(beliefs)
                             .iterations(10)
                             .tasks_per_iteration(10)
                             .max_slots(2'000'000)
                             .seed(seed)
                             .build();
        std::vector<long long> makespans;
        for (const auto& name : heuristics) {
            const auto sched = volsched::api::SchedulerRegistry::instance().make(name);
            makespans.push_back(sim.run(*sched).makespan);
        }
        table.add_instance(makespans);
    }

    std::vector<std::string> header = {"Algorithm", "Average dfb"};
    vu::TextTable out(header);
    out.align_right(1);
    std::vector<std::size_t> order(heuristics.size());
    for (std::size_t h = 0; h < order.size(); ++h) order[h] = h;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return table.mean_dfb(a) < table.mean_dfb(b);
    });
    for (std::size_t h : order)
        out.add_row({heuristics[h], vu::TextTable::num(table.mean_dfb(h), 2)});
    std::printf("%s(%lld instances; semi-Markov ground truth, fitted Markov "
                "beliefs)\n",
                out.render(
                       "Extension — dfb under non-Markov availability")
                    .c_str(),
                static_cast<long long>(table.instances()));
    return 0;
}
