/// \file bench_ckpt.cpp
/// Checkpoint/restart effectiveness across volatility regimes: how much of
/// the paper's crash-lose-everything compute waste
/// (RunMetrics::wasted_compute_slots) each recovery policy claws back, and
/// what it pays for that in checkpoint bandwidth and paused compute.
///
/// Two platform families, the same axes bench_engine measures throughput
/// on:
///
///  * *Paper-recipe Markov fleets* at three self-transition regimes
///    (calm 0.90..0.99 — the paper's Table 1 — down to volatile
///    0.35..0.60), chains doubling as beliefs.
///
///  * *The absence-dominated desktop-grid fleet*: heavy-tailed semi-Markov
///    night-shift workers (short UP bursts, long absences), Markov beliefs
///    fitted from the equivalent-Markov matrix — where long tasks rarely
///    survive an UP burst and restart-from-checkpoint pays the most.
///
/// Every policy faces the identical availability realizations (same seeds,
/// shared builder recipe), so per-regime deltas are same-instance, like the
/// paper's dfb metric.  `--json` writes the shared bench/report.hpp schema;
/// `--smoke` shrinks the grid for CI.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "report.hpp"

#include "api/registry.hpp"
#include "api/simulation_builder.hpp"
#include "ckpt/registry.hpp"
#include "exp/scenario.hpp"
#include "sim/engine.hpp"
#include "trace/semi_markov.hpp"
#include "util/cli.hpp"

namespace va = volsched::api;
namespace vb = volsched::benchtool;
namespace vc = volsched::ckpt;
namespace ve = volsched::exp;
namespace vm = volsched::markov;
namespace vs = volsched::sim;
namespace vt = volsched::trace;

namespace {

struct Accum {
    long long wasted_compute = 0;
    long long saved_compute = 0;
    long long checkpoint_slots = 0;
    long long checkpoints = 0;
    long long recoveries = 0;
    long long makespan = 0;
    long long completed = 0;
    long long runs = 0;
    double wall_seconds = 0;

    void add(const vs::RunMetrics& m) {
        wasted_compute += m.wasted_compute_slots;
        saved_compute += m.saved_compute_slots;
        checkpoint_slots += m.checkpoint_slots;
        checkpoints += m.checkpoints_committed;
        recoveries += m.recoveries;
        makespan += m.makespan;
        completed += m.completed ? 1 : 0;
        ++runs;
    }
};

/// One regime: a family of platform+belief recipes, rebuilt per seed so
/// every policy replays the identical draws.
struct Regime {
    std::string name;
    /// Builds the simulation for (seed ordinal s); checkpoint knobs are
    /// applied by the caller.
    std::function<va::SimulationBuilder(int)> builder;
};

Regime markov_regime(std::string name, double self_lo, double self_hi,
                     int procs, int tasks, int iterations,
                     long long max_slots, std::uint64_t seed) {
    return {std::move(name), [=](int s) {
                ve::Scenario sc;
                sc.p = procs;
                sc.tasks = tasks;
                sc.ncom = 5;
                sc.wmin = 4; // long-ish tasks: something to lose in a crash
                sc.recipe.self_lo = self_lo;
                sc.recipe.self_hi = self_hi;
                sc.seed = volsched::util::mix_seed(seed, 0xC4A7ULL, s);
                const ve::RealizedScenario rs = ve::realize(sc);
                auto builder = vs::Simulation::builder();
                builder.platform(rs.platform)
                    .markov(rs.chains)
                    .iterations(iterations)
                    .tasks_per_iteration(tasks)
                    // A bounded horizon: on the most volatile regime the
                    // checkpoint-free baseline may simply never finish —
                    // that *is* the result (see the completed column) and
                    // must not cost 10M simulated slots to establish.
                    .max_slots(max_slots)
                    .seed(sc.seed);
                return builder;
            }};
}

/// The bench_engine desktop-grid fleet (3 night-shift workers, ~90% absent
/// in long stretches) with tasks long enough (w=30, about one whole UP
/// burst) that a crash forfeits a burst's worth of work — the regime where
/// the Young/Daly interval (~20 slots here) says checkpointing pays.
Regime desktop_grid_regime(int iterations, long long max_slots,
                           std::uint64_t seed) {
    return {"desktop-grid", [=](int s) {
                using vt::SojournDist;
                constexpr int kProcs = 3;
                const auto pf = vs::Platform::homogeneous(
                    kProcs, /*w_all=*/30, /*ncom=*/2, /*t_prog=*/10,
                    /*t_data=*/2);
                vt::SemiMarkovParams params;
                params.sojourn = {SojournDist::weibull_with_mean(0.7, 30.0),
                                  SojournDist::weibull_with_mean(0.9, 80.0),
                                  SojournDist::weibull_with_mean(0.8, 400.0)};
                params.jump[0] = {0.0, 0.5, 0.5};
                params.jump[1] = {0.5, 0.0, 0.5};
                params.jump[2] = {0.9, 0.1, 0.0};
                const std::vector<vm::MarkovChain> beliefs(
                    kProcs,
                    vm::MarkovChain(vt::SemiMarkovAvailability(params)
                                        .equivalent_markov_matrix()));
                std::vector<std::unique_ptr<vm::AvailabilityModel>> models;
                models.reserve(kProcs);
                for (int q = 0; q < kProcs; ++q)
                    models.push_back(
                        std::make_unique<vt::SemiMarkovAvailability>(params));
                auto builder = vs::Simulation::builder();
                builder.platform(pf)
                    .models(std::move(models))
                    .beliefs(beliefs)
                    .iterations(iterations)
                    .tasks_per_iteration(4)
                    .max_slots(max_slots)
                    .seed(volsched::util::mix_seed(seed, 0xD36FULL, s));
                return builder;
            }};
}

Accum measure(const Regime& regime, const std::string& policy, int cost,
              int seeds, const std::string& heuristic) {
    const auto sched = va::SchedulerRegistry::instance().make(heuristic);
    Accum acc;
    const auto start = std::chrono::steady_clock::now();
    for (int s = 0; s < seeds; ++s) {
        auto builder = regime.builder(s);
        if (policy != "none")
            builder.checkpoint(policy).checkpoint_cost(cost);
        const auto sim = builder.build();
        acc.add(sim.run(*sched));
    }
    const auto stop = std::chrono::steady_clock::now();
    acc.wall_seconds = std::chrono::duration<double>(stop - start).count();
    return acc;
}

} // namespace

int main(int argc, char** argv) {
    volsched::util::Cli cli(
        "bench_ckpt",
        "Measures wasted-compute reduction from checkpoint/restart policies "
        "across volatility regimes");
    cli.add_int("procs", 20, "processors per Markov platform");
    cli.add_int("tasks", 10, "tasks per iteration (Markov regimes)");
    cli.add_int("iterations", 5, "application iterations per run");
    cli.add_int("seeds", 8, "independent instances per (regime, policy)");
    cli.add_int("cost", 2, "checkpoint upload cost in transfer slots");
    cli.add_int("seed", 4242, "master seed");
    cli.add_string("heuristic", "emct", "scheduler spec used for every run");
    cli.add_string("policies", "none,periodic8,daly,risk(percent=25)",
                   "comma-separated checkpoint-policy axis ('none' first is "
                   "the baseline)");
    cli.add_string("json", "", "write machine-readable results to this path");
    cli.add_flag("smoke", "tiny configuration for CI perf smoke");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    int procs = static_cast<int>(cli.get_int("procs"));
    int tasks = static_cast<int>(cli.get_int("tasks"));
    int iterations = static_cast<int>(cli.get_int("iterations"));
    int seeds = static_cast<int>(cli.get_int("seeds"));
    const int cost = static_cast<int>(cli.get_int("cost"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const std::string heuristic = cli.get_string("heuristic");
    long long max_slots = 150'000;
    if (cli.get_flag("smoke")) {
        procs = 8;
        tasks = 5;
        iterations = 2;
        seeds = 3;
        max_slots = 25'000;
    }

    const auto policies =
        volsched::util::split_list(cli.get_string("policies"));
    if (policies.empty()) {
        std::fprintf(stderr, "--policies names no specs\n");
        return 2;
    }
    for (const auto& p : policies) {
        if (p == "none") continue;
        try {
            vc::CheckpointRegistry::instance().validate(p);
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    const std::vector<Regime> regimes = {
        markov_regime("markov-calm", 0.90, 0.99, procs, tasks, iterations,
                      max_slots, seed),
        markov_regime("markov-mid", 0.60, 0.85, procs, tasks, iterations,
                      max_slots, seed),
        markov_regime("markov-volatile", 0.45, 0.70, procs, tasks,
                      iterations, max_slots, seed),
        desktop_grid_regime(iterations, max_slots, seed),
    };

    std::printf("bench_ckpt: %d seeds per (regime, policy), cost=%d, "
                "heuristic=%s\n\n",
                seeds, cost, heuristic.c_str());

    std::vector<vb::BenchRecord> records;
    for (const auto& regime : regimes) {
        volsched::util::TextTable table(
            {"policy", "wasted", "saved", "ckpt slots", "recoveries",
             "mean makespan", "completed"});
        for (std::size_t c = 1; c <= 6; ++c) table.align_right(c);
        long long baseline_wasted = -1;
        for (const auto& policy : policies) {
            const Accum acc = measure(regime, policy, cost, seeds, heuristic);
            if (policy == "none") baseline_wasted = acc.wasted_compute;
            std::string wasted = std::to_string(acc.wasted_compute);
            if (policy != "none" && baseline_wasted > 0) {
                // Signed change vs the none baseline: negative = reduction.
                const double delta =
                    100.0 * (static_cast<double>(acc.wasted_compute) -
                             static_cast<double>(baseline_wasted)) /
                    static_cast<double>(baseline_wasted);
                char buf[32];
                std::snprintf(buf, sizeof buf, " (%+.0f%%)", delta);
                wasted += buf;
            }
            table.add_row(
                {policy, wasted, std::to_string(acc.saved_compute),
                 std::to_string(acc.checkpoint_slots),
                 std::to_string(acc.recoveries),
                 volsched::util::TextTable::num(
                     static_cast<double>(acc.makespan) /
                         static_cast<double>(acc.runs > 0 ? acc.runs : 1),
                     1),
                 std::to_string(acc.completed) + "/" +
                     std::to_string(acc.runs)});
            vb::BenchRecord rec;
            rec.name = "ckpt/" + regime.name + "/" + policy;
            rec.iterations = acc.runs;
            rec.wall_seconds = acc.wall_seconds;
            // The trajectory metric for this bench is waste, not speed:
            // wasted compute slots per run (lower is better).
            rec.slots_per_sec =
                acc.runs > 0 ? static_cast<double>(acc.wasted_compute) /
                                   static_cast<double>(acc.runs)
                             : 0;
            records.push_back(rec);
        }
        std::printf("%s",
                    table.render("regime: " + regime.name +
                                 "  (wasted/saved in compute slot-units, "
                                 "summed over seeds)")
                        .c_str());
        std::printf("\n");
    }

    std::puts("note: 'slots_per_sec' in the JSON carries wasted compute "
              "slots per run for this bench (lower is better).");

    const std::string json = cli.get_string("json");
    if (!json.empty() && !vb::write_bench_json(json, "bench_ckpt", records))
        return 1;
    return 0;
}
