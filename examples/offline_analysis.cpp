/// \file offline_analysis.cpp
/// Walks through the Section 4 (off-line complexity) toolkit:
///   1. DOWN-elimination: rewrite a 3-state instance into an equivalent
///      2-state one (the proof device that lets the theory ignore crashes),
///   2. the off-line MCT list scheduler and its optimality certificate
///      against the exact branch-and-bound solver (Proposition 2),
///   3. the paper's counter-example showing MCT is *not* optimal once the
///      master's bandwidth is bounded,
///   4. a 3SAT formula pushed through the Theorem 1 reduction, with the
///      constructive schedule of the satisfiability proof validated by the
///      model checker.

#include <cstdio>

#include "volsched/volsched.hpp"

int main() {
    using namespace volsched::offline;

    // -- 1. DOWN elimination ------------------------------------------------
    OfflineInstance inst;
    inst.platform.w = {2, 3};
    inst.platform.ncom = 2;
    inst.platform.t_prog = 2;
    inst.platform.t_data = 1;
    inst.num_tasks = 3;
    inst.horizon = 20;
    inst.states = states_from_strings(
        {"uuuuuddduuuuuuuuuuuu", "uuuuuuuuuuuurrrrruuu"});
    const auto reduced = two_state_reduction(inst);
    std::printf("1. DOWN elimination: %d processors -> %d two-state "
                "processors (no DOWN states remain)\n\n",
                inst.num_procs(), reduced.num_procs());

    // -- 2. MCT vs exact ----------------------------------------------------
    const auto mct = mct_offline(inst);
    const auto exact = solve_exact(inst);
    std::printf("2. off-line MCT: makespan %d; exact optimum: %d "
                "(ncom unbounded here, so they match: Proposition 2)\n",
                mct.makespan, exact.makespan);
    const auto v = validate(inst, mct.schedule);
    std::printf("   MCT schedule checked by the validator: %s\n",
                v.valid && v.all_done ? "valid, complete" : v.error.c_str());
    std::printf("   (P program, D data, C compute, B both, r reclaimed, "
                "d down)\n%s\n",
                render_schedule(inst, mct.schedule).c_str());

    // -- 3. Bounded bandwidth breaks MCT -------------------------------------
    OfflineInstance example;
    example.platform.w = {2, 2};
    example.platform.ncom = 1;
    example.platform.t_prog = 2;
    example.platform.t_data = 2;
    example.num_tasks = 2;
    example.horizon = 9;
    example.states = states_from_strings({"uuuuuurrr", "ruuuuuuuu"});
    const auto opt = solve_exact(example);
    std::printf("3. the paper's ncom=1 counter-example: optimum = %d slots; "
                "MCT's greedy start (task on P1) forces 10.\n\n",
                opt.makespan);

    // -- 4. Theorem 1 gadget -------------------------------------------------
    const auto sat = figure1_instance();
    std::vector<bool> witness;
    brute_force_sat(sat, &witness);
    const auto gadget = sat_to_offline(sat);
    const auto sched = schedule_from_assignment(sat, gadget, witness);
    const auto gv = validate(gadget, sched);
    std::printf("4. Figure 1 3SAT formula: satisfiable; reduction gives "
                "p=%d procs, m=%d tasks, N=%d slots.\n"
                "   constructive schedule: %s, finishes at slot %d <= N.\n",
                gadget.num_procs(), gadget.num_tasks, gadget.horizon,
                gv.valid && gv.all_done ? "valid" : gv.error.c_str(),
                gv.makespan);
    std::puts("\nTogether these artifacts certify the Section 4 theory: "
              "scheduling is easy without bandwidth limits and NP-hard with "
              "them.");
    return 0;
}
