/// \file trace_replay.cpp
/// The Failure-Trace-Archive-style workflow the paper names as future work
/// (Section 8):
///   1. generate heavy-tailed semi-Markov (Weibull) availability for a
///      fleet — the regime empirical desktop-grid studies report,
///   2. serialize the traces to the on-disk text format and read them back,
///   3. fit 3-state Markov chains to each trace (what a Markov-believing
///      scheduler could estimate in production),
///   4. replay the traces in the simulator with the fitted beliefs and
///      compare failure-aware heuristics against classical ones.

#include <cstdio>
#include <memory>
#include <sstream>

#include "volsched/volsched.hpp"

int main() {
    using namespace volsched;
    const int p = 16;
    util::Rng rng(20260612);

    // -- 1. Record semi-Markov availability for each host.
    std::vector<trace::RecordedTrace> traces;
    for (int q = 0; q < p; ++q) {
        const auto params =
            trace::desktop_grid_params(80.0 + 20.0 * (q % 5));
        trace::SemiMarkovAvailability proto(params);
        traces.push_back(trace::record(proto, 60000, rng));
    }

    // -- 2. Round-trip through the text serialization (the same format one
    //       would use for converted FTA traces).
    std::stringstream archive;
    trace::write_traces(archive, traces);
    const auto loaded = trace::read_traces(archive);
    std::printf("serialized and re-loaded %zu traces (%zu slots each)\n\n",
                loaded.size(), loaded[0].length());

    // -- 3. Per-host empirical statistics + fitted Markov beliefs.
    util::TextTable stats({"host", "up%", "reclaimed%", "down%",
                           "mean up-run", "fitted P_uu"});
    for (std::size_t c = 1; c < 6; ++c) stats.align_right(c);
    for (int q = 0; q < p; ++q) {
        const auto st = trace::analyze(loaded[q]);
        const auto fitted = trace::fit_markov({loaded[q]});
        if (q < 5) // keep the table short
            stats.add_row({"host" + std::to_string(q),
                           util::TextTable::num(100 * st.occupancy[0], 1),
                           util::TextTable::num(100 * st.occupancy[1], 1),
                           util::TextTable::num(100 * st.occupancy[2], 1),
                           util::TextTable::num(st.mean_interval[0], 1),
                           util::TextTable::num(fitted.p_uu(), 4)});
    }
    std::printf("%s(first 5 hosts shown)\n\n", stats.render().c_str());

    // -- 4. Replay in the simulator under several heuristics.  The
    //       builder's empirical() source replays each trace and fits its
    //       Markov belief in one step (same fit as the table above).
    sim::Platform platform;
    platform.ncom = 4;
    platform.t_prog = 15;
    platform.t_data = 3;
    for (int q = 0; q < p; ++q)
        platform.w.push_back(5 + static_cast<int>(rng.uniform_int(0, 25)));

    const auto simulation = sim::Simulation::builder()
                                .platform(platform)
                                .empirical(loaded)
                                .iterations(10)
                                .tasks_per_iteration(12)
                                .seed(3)
                                .build();

    util::TextTable result({"heuristic", "makespan", "crashes"});
    result.align_right(1);
    result.align_right(2);
    for (const char* name : {"emct*", "emct", "mct", "ud*", "lw*",
                             "random2w", "random"}) {
        const auto sched = api::SchedulerRegistry::instance().make(name);
        const auto m = simulation.run(*sched);
        result.add_row({name, std::to_string(m.makespan),
                        std::to_string(m.down_events)});
    }
    std::printf("%s", result.render("Replay: non-Markov traces, fitted "
                                    "Markov beliefs")
                          .c_str());
    std::puts("\nThe Markov formulas are only approximate here — exactly the "
              "robustness question Section 8 of the paper raises.");
    return 0;
}
