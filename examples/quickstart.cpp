/// \file quickstart.cpp
/// The 20-line volsched facade showcase (see API.md): one umbrella include,
/// a fluent Simulation builder, and registry spec strings — three
/// heuristics race on the identical availability realization.
///
/// Build and run:
///   cmake --preset release && cmake --build --preset release
///   ./build/release/example_quickstart

#include <cstdio>

#include "volsched/volsched.hpp"

int main() {
    using namespace volsched;

    util::Rng rng(2025);
    sim::Platform platform = sim::Platform::homogeneous(
        /*p=*/20, /*w=*/8, /*ncom=*/5, /*t_prog=*/10, /*t_data=*/2);

    const auto simulation = sim::Simulation::builder()
                                .platform(platform)
                                .markov(markov::generate_chains(20, rng))
                                .iterations(10)
                                .tasks_per_iteration(10)
                                .replica_cap(2)
                                .seed(42)
                                .build();

    for (const char* spec : {"emct*", "mct", "thr50:emct", "random"}) {
        const auto sched = api::SchedulerRegistry::instance().make(spec);
        const auto m = simulation.run(*sched);
        std::printf("%-10s makespan %6lld slots | %3lld crashes | wasted "
                    "%5lld comm, %5lld compute\n",
                    spec, m.makespan, m.down_events,
                    m.wasted_transfer_slots, m.wasted_compute_slots);
    }
    std::puts("\nLower makespan is better; all runs saw the identical "
              "availability trace.  volsched_sim --list-heuristics prints "
              "every registered spec.");
    return 0;
}
