/// \file quickstart.cpp
/// Minimal end-to-end use of the volsched public API:
///  1. describe a platform (20 volatile processors, bounded master
///     bandwidth),
///  2. draw per-processor 3-state Markov availability chains,
///  3. run a 10-iteration master-worker application under the paper's best
///     heuristic (EMCT*) and under plain MCT,
///  4. print makespans and resource-usage metrics.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "core/factory.hpp"
#include "markov/gen.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

int main() {
    using namespace volsched;

    // -- 1. Platform: 20 processors, task cost w_q in [2, 20] slots,
    //       master can feed 5 workers at a time, program 10 slots, data 2.
    sim::Platform platform;
    platform.ncom = 5;
    platform.t_prog = 10;
    platform.t_data = 2;
    util::Rng rng(2025);
    for (int q = 0; q < 20; ++q)
        platform.w.push_back(2 + static_cast<int>(rng.uniform_int(0, 18)));

    // -- 2. Availability: one 3-state Markov chain per processor, drawn
    //       with the paper's recipe (self-transition in [0.90, 0.99]).
    const auto chains = markov::generate_chains(20, rng);

    // -- 3. Application: 10 iterations of 10 tasks, up to 2 extra replicas.
    sim::EngineConfig config;
    config.iterations = 10;
    config.tasks_per_iteration = 10;
    config.replica_cap = 2;

    const auto simulation =
        sim::Simulation::from_chains(platform, chains, config, /*seed=*/42);

    // -- 4. Run three heuristics on the *same* availability realization.
    for (const char* name : {"emct*", "mct", "random"}) {
        const auto scheduler = core::make_scheduler(name);
        const auto metrics = simulation.run(*scheduler);
        std::printf(
            "%-8s makespan %6lld slots | %3lld crashes | %4lld replica "
            "commits (%lld wins) | wasted: %5lld comm, %5lld compute\n",
            name, metrics.makespan, metrics.down_events,
            metrics.replicas_committed, metrics.replica_wins,
            metrics.wasted_transfer_slots, metrics.wasted_compute_slots);
    }
    std::puts("\nLower makespan is better; all three runs saw the identical "
              "availability trace.");

    // -- 5. Re-run the winner with the timeline recorder attached and show
    //       the first few workers' activity (P program, D data, C compute,
    //       B both, r reclaimed, d down, . idle).
    sim::Timeline timeline;
    config.timeline = &timeline;
    const auto traced =
        sim::Simulation::from_chains(platform, chains, config, /*seed=*/42);
    const auto scheduler = core::make_scheduler("emct*");
    (void)traced.run(*scheduler);
    std::printf("\nfirst 72 slots of the emct* run:\n%s",
                timeline.render(0, 72).c_str());
    return 0;
}
