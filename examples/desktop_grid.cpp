/// \file desktop_grid.cpp
/// A fuller scenario modeled on the paper's motivating deployment: an
/// enterprise desktop grid running a mesh-based iterative PDE solver
/// overnight.  The fleet mixes three machine classes:
///   - workstations: fast, stable (rarely reclaimed, rarely crash),
///   - desktops: medium speed, frequently reclaimed by their owners,
///   - laptops: slow, reclaimed often and crash-prone (battery / undock).
///
/// The example compares every heuristic family on this platform and prints
/// a per-class utilization profile for the winner, showing *why*
/// failure-aware selection helps: it shifts work toward the stable class
/// when tasks are long.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "volsched/volsched.hpp"

namespace {

using namespace volsched;

/// Builds a 3-state chain from mean sojourns (in slots) and the crash
/// shares of each state's exits.
markov::MarkovChain chain_from_means(double mean_up, double mean_reclaimed,
                                     double mean_down, double up_crash_share,
                                     double reclaimed_crash_share) {
    const double exit_u = 1.0 / mean_up;
    const double exit_r = 1.0 / mean_reclaimed;
    const double exit_d = 1.0 / mean_down;
    return markov::MarkovChain(markov::TransitionMatrix({{
        {1.0 - exit_u, exit_u * (1.0 - up_crash_share),
         exit_u * up_crash_share},
        {exit_r * (1.0 - reclaimed_crash_share), 1.0 - exit_r,
         exit_r * reclaimed_crash_share},
        {exit_d, 0.0, 1.0 - exit_d},
    }}));
}

struct MachineClass {
    const char* name;
    int count;
    int w;                  // slots per task
    markov::MarkovChain chain;
};

} // namespace

int main() {
    // One slot ~ 1 minute.  Overnight run: 10 sweeps of a 24-tile mesh.
    std::vector<MachineClass> classes = {
        {"workstation", 6, 8,
         chain_from_means(/*up=*/600, /*recl=*/30, /*down=*/120, 0.10, 0.05)},
        {"desktop", 10, 14,
         chain_from_means(/*up=*/90, /*recl=*/45, /*down=*/180, 0.15, 0.10)},
        {"laptop", 8, 22,
         chain_from_means(/*up=*/45, /*recl=*/40, /*down=*/240, 0.35, 0.25)},
    };

    sim::Platform platform;
    platform.ncom = 4;   // office switch uplink: 4 concurrent feeds
    platform.t_prog = 12; // solver binary + mesh geometry
    platform.t_data = 3;  // per-tile boundary data
    std::vector<markov::MarkovChain> chains;
    std::vector<int> class_of;
    for (std::size_t c = 0; c < classes.size(); ++c)
        for (int i = 0; i < classes[c].count; ++i) {
            platform.w.push_back(classes[c].w);
            chains.push_back(classes[c].chain);
            class_of.push_back(static_cast<int>(c));
        }

    const auto simulation = sim::Simulation::builder()
                                .platform(platform)
                                .markov(chains)
                                .iterations(10)          // PDE sweeps
                                .tasks_per_iteration(24) // mesh tiles
                                .replica_cap(2)
                                .seed(7)
                                .build();

    util::TextTable table({"heuristic", "makespan (min)", "crashes",
                           "wasted compute", "replica wins"});
    for (std::size_t c = 1; c < 5; ++c) table.align_right(c);

    long long best = -1;
    std::string best_name;
    for (const auto& name : core::all_heuristic_names()) {
        const auto sched = api::SchedulerRegistry::instance().make(name);
        const auto m = simulation.run(*sched);
        if (best < 0 || m.makespan < best) {
            best = m.makespan;
            best_name = name;
        }
        table.add_row({name, std::to_string(m.makespan),
                       std::to_string(m.down_events),
                       std::to_string(m.wasted_compute_slots),
                       std::to_string(m.replica_wins)});
    }
    std::printf("%s", table.render("Overnight PDE sweep on a mixed desktop "
                                   "grid (24 tiles x 10 sweeps)")
                          .c_str());
    std::printf("\nbest heuristic on this realization: %s (%lld minutes "
                "simulated)\n",
                best_name.c_str(), best);

    // Utilization insight: expected completion time of one task per class
    // under the Theorem 2 machinery — the quantity EMCT ranks by.
    std::printf("\nper-class reliability profile (Theorem 2 view):\n");
    for (const auto& mc : classes) {
        const double e = markov::e_workload(mc.chain.matrix(),
                                            platform.t_data + mc.w);
        const double p = markov::workload_success_probability(
            mc.chain.matrix(), platform.t_data + mc.w);
        std::printf(
            "  %-12s w=%2d  E[slots for data+task]=%6.1f  "
            "P[no crash during it]=%.3f\n",
            mc.name, mc.w, e, p);
    }
    std::puts("\nEMCT-family heuristics rank by E[slots]; LW/UD also weigh "
              "the crash probability.");
    return 0;
}
