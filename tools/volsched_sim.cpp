/// \file volsched_sim.cpp
/// Command-line simulation driver: one run (or a same-realization
/// comparison of several heuristics), fully parameterized, with optional
/// event-log CSV and ASCII timeline output.
///
///   volsched_sim --heuristic emct* --procs 20 --tasks 10 --iterations 10
///                --ncom 5 --wmin 2 --seed 42 --timeline --events run.csv
///   volsched_sim --heuristics "emct*,mct,thr50:emct" --seed 7
///   volsched_sim --list-heuristics
///
/// Heuristics are named by registry spec strings (see API.md): any
/// registered name, wrapper stages ("thr50:emct") and key=value options
/// ("thr(percent=50):emct").  Availability models: "markov" (paper
/// recipe), "weibull" and "lognormal" (semi-Markov desktop-grid fleets
/// with Markov beliefs fitted from a recorded history).

#include <cstdio>
#include <fstream>
#include <memory>

#include "volsched/volsched.hpp"

namespace {

using namespace volsched;

int list_heuristics() {
    const auto entries = api::SchedulerRegistry::instance().entries();
    util::TextTable table({"name", "description"});
    for (const auto& entry : entries) {
        std::string name = entry.name;
        if (entry.takes_inner) name += ":<inner>";
        table.add_row({name, entry.description});
    }
    std::printf("%s", table.render("registered heuristics").c_str());
    std::puts("\nspec grammar: name[(key=value,...)][:inner], e.g. "
              "thr50:emct or thr(percent=50):emct\n"
              "paper sections and intuitions: HEURISTICS.md");
    return 0;
}

int list_checkpoints() {
    const auto entries = ckpt::CheckpointRegistry::instance().entries();
    util::TextTable table({"name", "description"});
    for (const auto& entry : entries)
        table.add_row({entry.name, entry.description});
    std::printf("%s", table.render("registered checkpoint policies").c_str());
    std::puts("\nspec grammar: name[(key=value,...)], e.g. periodic20 or "
              "risk(percent=25); policies do not nest.\n"
              "model and formulas: src/ckpt/policy.hpp and API.md");
    return 0;
}

void print_metrics(const sim::RunMetrics& m, int tasks_per_iteration,
                   bool checkpointing) {
    std::printf("completed        %s\n", m.completed ? "yes" : "NO");
    std::printf("makespan         %lld slots (%d iterations x %d tasks)\n",
                m.makespan, m.iterations_completed, tasks_per_iteration);
    std::printf("tasks completed  %lld  (replica commits %lld, wins %lld)\n",
                m.tasks_completed, m.replicas_committed, m.replica_wins);
    std::printf("crashes          %lld   proactive cancels %lld\n",
                m.down_events, m.proactive_cancellations);
    std::printf("transfer slots   %lld  (wasted %lld)\n", m.transfer_slots,
                m.wasted_transfer_slots);
    std::printf("compute slots    %lld  (wasted %lld)\n", m.compute_slots,
                m.wasted_compute_slots);
    if (checkpointing)
        std::printf("checkpoints      %lld committed (%lld transfer slots, "
                    "%lld recoveries, %lld compute slots saved)\n",
                    m.checkpoints_committed, m.checkpoint_slots,
                    m.recoveries, m.saved_compute_slots);
    if (m.dead_slots_skipped > 0)
        std::printf("dead slots       %lld fast-forwarded (all workers "
                    "absent)\n",
                    m.dead_slots_skipped);
    if (m.slots_elided > 0)
        std::printf("slots elided     %lld advanced in closed form "
                    "(event-driven core)\n",
                    m.slots_elided);
    if (m.cache_hits + m.cache_misses > 0)
        std::printf("score cache      %lld hits, %lld misses, %lld "
                    "invalidations\n",
                    m.cache_hits, m.cache_misses, m.cache_invalidations);
}

} // namespace

int main(int argc, char** argv) {
    util::Cli cli("volsched_sim", "run one master-worker simulation");
    cli.add_string("heuristic", "emct*",
                   "scheduler spec (--list-heuristics prints all names)");
    cli.add_string("heuristics", "",
                   "comma-separated specs: compare them on one realization");
    cli.add_flag("list-heuristics",
                 "print the registered heuristics and exit");
    cli.add_string("checkpoint", "none",
                   "checkpoint policy spec (--list-checkpoints prints all)");
    cli.add_int("checkpoint-cost", 1,
                "master transfer slots per checkpoint upload");
    cli.add_flag("list-checkpoints",
                 "print the registered checkpoint policies and exit");
    cli.add_string("metrics-json", "",
                   "write the full RunMetrics as JSON to this path ('-' for "
                   "stdout); comparison mode writes one object per spec");
    cli.add_string("model", "markov", "availability: markov|weibull|lognormal");
    cli.add_string("class", "dynamic", "scheduler class: dynamic|passive|proactive");
    cli.add_int("procs", 20, "number of processors");
    cli.add_int("tasks", 10, "tasks per iteration (m)");
    cli.add_int("iterations", 10, "iterations to complete");
    cli.add_int("ncom", 5, "max concurrent master transfers");
    cli.add_int("wmin", 2, "w_q ~ U[wmin, 10*wmin]; Tdata=wmin, Tprog=5*wmin");
    cli.add_int("replicas", 2, "extra replica cap per task");
    cli.add_int("seed", 42, "master seed");
    cli.add_int("mean-up", 120, "mean UP sojourn (semi-Markov models)");
    cli.add_flag("no-skip", "disable the engine's dead-stretch fast-forward "
                            "(results are identical either way)");
    cli.add_flag("no-event-core",
                 "step every slot through the reference loop instead of the "
                 "event-driven core (results are identical either way)");
    cli.add_flag("timeline", "print the ASCII activity chart");
    cli.add_int("timeline-window", 120, "chart slots to display");
    cli.add_string("events", "", "write the event log to this CSV path");
    cli.add_string("trace-out", "",
                   "write a Perfetto-loadable Chrome trace JSON of the run "
                   "to this path (1 slot = 1 us; single-heuristic runs)");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    if (cli.get_flag("list-heuristics")) return list_heuristics();
    if (cli.get_flag("list-checkpoints")) return list_checkpoints();

    const std::string& spec_list = cli.get_string("heuristics");
    std::vector<std::string> specs = util::split_list(spec_list);
    if (!spec_list.empty() && specs.empty()) {
        std::fprintf(stderr, "--heuristics '%s' contains no specs\n",
                     spec_list.c_str());
        return 2;
    }
    if (specs.empty()) {
        specs.push_back(cli.get_string("heuristic"));
    } else if (cli.get_string("heuristic") != "emct*") {
        std::fprintf(stderr, "note: --heuristic '%s' is ignored because "
                             "--heuristics is given\n",
                     cli.get_string("heuristic").c_str());
    }
    const auto& registry = api::SchedulerRegistry::instance();
    for (const auto& spec : specs) {
        try {
            registry.validate(spec);
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    const int p = static_cast<int>(cli.get_int("procs"));
    const int wmin = static_cast<int>(cli.get_int("wmin"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto& model = cli.get_string("model");

    // Platform + availability, assembled through the facade builder.
    util::Rng rng(util::mix_seed(seed, 0x700157ULL));
    sim::Platform pf;
    pf.ncom = static_cast<int>(cli.get_int("ncom"));
    pf.t_data = wmin;
    pf.t_prog = 5 * wmin;
    for (int q = 0; q < p; ++q)
        pf.w.push_back(static_cast<int>(
            rng.uniform_int(wmin, static_cast<std::uint64_t>(10) * wmin)));

    auto builder = sim::Simulation::builder();
    builder.platform(pf).seed(seed);
    if (model == "markov") {
        builder.markov(markov::generate_chains(static_cast<std::size_t>(p),
                                               rng));
    } else if (model == "weibull" || model == "lognormal") {
        const double mean_up =
            static_cast<double>(cli.get_int("mean-up"));
        std::vector<std::unique_ptr<markov::AvailabilityModel>> models;
        std::vector<markov::MarkovChain> beliefs;
        for (int q = 0; q < p; ++q) {
            const auto params =
                model == "weibull"
                    ? trace::desktop_grid_params(mean_up *
                                                 rng.uniform(0.5, 1.5))
                    : trace::desktop_grid_params_lognormal(
                          mean_up * rng.uniform(0.5, 1.5));
            trace::SemiMarkovAvailability proto(params);
            util::Rng fit_rng(util::mix_seed(seed, q, 0xF17));
            const auto history = trace::record(proto, 30000, fit_rng);
            beliefs.emplace_back(trace::fit_markov({history}));
            models.push_back(
                std::make_unique<trace::SemiMarkovAvailability>(params));
        }
        builder.models(std::move(models)).beliefs(std::move(beliefs));
    } else {
        std::fprintf(stderr, "unknown availability model '%s'\n",
                     model.c_str());
        return 2;
    }

    builder.iterations(static_cast<int>(cli.get_int("iterations")))
        .tasks_per_iteration(static_cast<int>(cli.get_int("tasks")))
        .replica_cap(static_cast<int>(cli.get_int("replicas")))
        .skip_dead_slots(!cli.get_flag("no-skip"))
        .event_driven(!cli.get_flag("no-event-core"));
    const std::string& ckpt_spec = cli.get_string("checkpoint");
    const bool checkpointing = ckpt_spec != "none";
    if (checkpointing) {
        try {
            builder.checkpoint(ckpt_spec)
                .checkpoint_cost(
                    static_cast<int>(cli.get_int("checkpoint-cost")));
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }
    const auto& cls = cli.get_string("class");
    if (cls == "passive") builder.plan_class(sim::SchedulerClass::Passive);
    else if (cls == "proactive")
        builder.plan_class(sim::SchedulerClass::Proactive);
    else if (cls != "dynamic") {
        std::fprintf(stderr, "unknown scheduler class '%s'\n", cls.c_str());
        return 2;
    }

    sim::EventLog events;
    sim::Timeline timeline;
    obs::TraceRecorder tracer;
    const bool single = specs.size() == 1;
    const bool want_events = !cli.get_string("events").empty();
    const bool want_timeline = cli.get_flag("timeline");
    const bool want_trace = !cli.get_string("trace-out").empty();
    if (single && want_events) builder.events(&events);
    if (single && want_timeline) builder.timeline(&timeline);
    if (single && want_trace) builder.trace(&tracer);
    if (!single && (want_events || want_timeline || want_trace))
        std::fprintf(stderr, "note: --events/--timeline/--trace-out only "
                             "apply to single-heuristic runs; ignoring\n");

    const auto simulation = builder.build();

    const std::string& metrics_json = cli.get_string("metrics-json");
    const auto emit_json = [&metrics_json](const std::string& text) {
        if (metrics_json == "-") {
            std::printf("%s\n", text.c_str());
            return true;
        }
        std::ofstream out(metrics_json);
        out << text << '\n';
        out.flush();
        if (!out) {
            std::fprintf(stderr, "error: could not write %s\n",
                         metrics_json.c_str());
            return false;
        }
        std::printf("wrote metrics JSON to %s\n", metrics_json.c_str());
        return true;
    };

    if (single) {
        const auto sched = registry.make(specs.front());
        const auto m = simulation.run(*sched);
        std::printf("heuristic        %s (%s class, %s availability"
                    "%s%s)\n",
                    std::string(sched->name()).c_str(), cls.c_str(),
                    model.c_str(), checkpointing ? ", checkpoint " : "",
                    checkpointing ? ckpt_spec.c_str() : "");
        print_metrics(m, simulation.config().tasks_per_iteration,
                      checkpointing);
        if (want_timeline) {
            const long long window = cli.get_int("timeline-window");
            std::printf("\nactivity chart (first %lld slots; P prog, D data, "
                        "C compute, B both, K checkpoint, r reclaimed, "
                        "d down):\n%s",
                        window, timeline.render(0, window).c_str());
        }
        if (want_events) {
            std::ofstream out(cli.get_string("events"));
            events.write_csv(out);
            std::printf("\nwrote %zu events to %s\n", events.size(),
                        cli.get_string("events").c_str());
        }
        if (want_trace) {
            tracer.meta("tool", "volsched_sim");
            tracer.meta("heuristic", std::string(sched->name()));
            tracer.meta("model", model);
            tracer.meta("seed", std::to_string(seed));
            const std::string& trace_path = cli.get_string("trace-out");
            std::ofstream out(trace_path);
            tracer.write_json(out);
            out.flush();
            if (!out) {
                std::fprintf(stderr, "error: could not write %s\n",
                             trace_path.c_str());
                return 1;
            }
            std::printf("wrote %zu trace events to %s\n", tracer.size(),
                        trace_path.c_str());
        }
        if (!metrics_json.empty() && !emit_json(sim::metrics_to_json(m)))
            return 1;
        return m.completed ? 0 : 1;
    }

    // Comparison mode: every spec faces the identical availability
    // realization (the per-instance property the paper's metric needs).
    util::TextTable table({"heuristic", "makespan", "completed", "crashes",
                           "replica wins", "wasted comm", "wasted compute"});
    for (std::size_t c = 1; c < 7; ++c) table.align_right(c);
    bool all_completed = true;
    std::string json_rows = "[";
    for (const auto& spec : specs) {
        const auto sched = registry.make(spec);
        const auto m = simulation.run(*sched);
        all_completed = all_completed && m.completed;
        table.add_row({std::string(sched->name()),
                       std::to_string(m.makespan),
                       m.completed ? "yes" : "NO",
                       std::to_string(m.down_events),
                       std::to_string(m.replica_wins),
                       std::to_string(m.wasted_transfer_slots),
                       std::to_string(m.wasted_compute_slots)});
        if (!metrics_json.empty()) {
            if (json_rows.size() > 1) json_rows += ',';
            json_rows += "\n  {\"heuristic\":\"" + util::json::escape(spec) +
                         "\",\"metrics\":" + sim::metrics_to_json(m) + "}";
        }
    }
    std::printf("%s", table.render(std::to_string(specs.size()) +
                                   " heuristics, one availability "
                                   "realization (" + model + ", " + cls +
                                   " class" +
                                   (checkpointing
                                        ? ", checkpoint " + ckpt_spec
                                        : "") +
                                   ")")
                          .c_str());
    if (!metrics_json.empty() && !emit_json(json_rows + "\n]")) return 1;
    return all_completed ? 0 : 1;
}
