/// \file volsched_sim.cpp
/// Command-line simulation driver: one run, fully parameterized, with
/// optional event-log CSV and ASCII timeline output.
///
///   volsched_sim --heuristic emct* --procs 20 --tasks 10 --iterations 10
///                --ncom 5 --wmin 2 --seed 42 --timeline --events run.csv
///
/// Availability models: "markov" (paper recipe), "weibull" and "lognormal"
/// (semi-Markov desktop-grid fleets with Markov beliefs fitted from a
/// recorded history).

#include <cstdio>
#include <fstream>
#include <memory>

#include "core/factory.hpp"
#include "exp/scenario.hpp"
#include "markov/gen.hpp"
#include "sim/engine.hpp"
#include "trace/empirical.hpp"
#include "trace/semi_markov.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
    using namespace volsched;
    util::Cli cli("volsched_sim", "run one master-worker simulation");
    cli.add_string("heuristic", "emct*", "scheduler name (see factory)");
    cli.add_string("model", "markov", "availability: markov|weibull|lognormal");
    cli.add_string("class", "dynamic", "scheduler class: dynamic|passive|proactive");
    cli.add_int("procs", 20, "number of processors");
    cli.add_int("tasks", 10, "tasks per iteration (m)");
    cli.add_int("iterations", 10, "iterations to complete");
    cli.add_int("ncom", 5, "max concurrent master transfers");
    cli.add_int("wmin", 2, "w_q ~ U[wmin, 10*wmin]; Tdata=wmin, Tprog=5*wmin");
    cli.add_int("replicas", 2, "extra replica cap per task");
    cli.add_int("seed", 42, "master seed");
    cli.add_int("mean-up", 120, "mean UP sojourn (semi-Markov models)");
    cli.add_flag("timeline", "print the ASCII activity chart");
    cli.add_int("timeline-window", 120, "chart slots to display");
    cli.add_string("events", "", "write the event log to this CSV path");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    const int p = static_cast<int>(cli.get_int("procs"));
    const int wmin = static_cast<int>(cli.get_int("wmin"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto& model = cli.get_string("model");

    // Platform + availability.
    util::Rng rng(util::mix_seed(seed, 0x700157ULL));
    sim::Platform pf;
    pf.ncom = static_cast<int>(cli.get_int("ncom"));
    pf.t_data = wmin;
    pf.t_prog = 5 * wmin;
    for (int q = 0; q < p; ++q)
        pf.w.push_back(static_cast<int>(
            rng.uniform_int(wmin, static_cast<std::uint64_t>(10) * wmin)));

    std::vector<std::unique_ptr<markov::AvailabilityModel>> models;
    std::vector<markov::MarkovChain> beliefs;
    if (model == "markov") {
        const auto chains =
            markov::generate_chains(static_cast<std::size_t>(p), rng);
        for (const auto& c : chains) {
            models.push_back(std::make_unique<markov::MarkovAvailability>(c));
            beliefs.push_back(c);
        }
    } else if (model == "weibull" || model == "lognormal") {
        const double mean_up =
            static_cast<double>(cli.get_int("mean-up"));
        for (int q = 0; q < p; ++q) {
            const auto params =
                model == "weibull"
                    ? trace::desktop_grid_params(mean_up *
                                                 rng.uniform(0.5, 1.5))
                    : trace::desktop_grid_params_lognormal(
                          mean_up * rng.uniform(0.5, 1.5));
            trace::SemiMarkovAvailability proto(params);
            util::Rng fit_rng(util::mix_seed(seed, q, 0xF17));
            const auto history = trace::record(proto, 30000, fit_rng);
            beliefs.emplace_back(trace::fit_markov({history}));
            models.push_back(
                std::make_unique<trace::SemiMarkovAvailability>(params));
        }
    } else {
        std::fprintf(stderr, "unknown availability model '%s'\n",
                     model.c_str());
        return 2;
    }

    sim::EngineConfig cfg;
    cfg.iterations = static_cast<int>(cli.get_int("iterations"));
    cfg.tasks_per_iteration = static_cast<int>(cli.get_int("tasks"));
    cfg.replica_cap = static_cast<int>(cli.get_int("replicas"));
    const auto& cls = cli.get_string("class");
    if (cls == "passive") cfg.plan_class = sim::SchedulerClass::Passive;
    else if (cls == "proactive")
        cfg.plan_class = sim::SchedulerClass::Proactive;
    else if (cls != "dynamic") {
        std::fprintf(stderr, "unknown scheduler class '%s'\n", cls.c_str());
        return 2;
    }

    sim::EventLog events;
    sim::Timeline timeline;
    if (!cli.get_string("events").empty()) cfg.events = &events;
    if (cli.get_flag("timeline")) cfg.timeline = &timeline;

    const sim::Simulation simulation(pf, std::move(models), beliefs, cfg,
                                     seed);
    const auto sched = core::make_scheduler(cli.get_string("heuristic"));
    const auto m = simulation.run(*sched);

    std::printf("heuristic        %s (%s class, %s availability)\n",
                std::string(sched->name()).c_str(), cls.c_str(),
                model.c_str());
    std::printf("completed        %s\n", m.completed ? "yes" : "NO");
    std::printf("makespan         %lld slots (%d iterations x %d tasks)\n",
                m.makespan, m.iterations_completed, cfg.tasks_per_iteration);
    std::printf("tasks completed  %lld  (replica commits %lld, wins %lld)\n",
                m.tasks_completed, m.replicas_committed, m.replica_wins);
    std::printf("crashes          %lld   proactive cancels %lld\n",
                m.down_events, m.proactive_cancellations);
    std::printf("transfer slots   %lld  (wasted %lld)\n", m.transfer_slots,
                m.wasted_transfer_slots);
    std::printf("compute slots    %lld  (wasted %lld)\n", m.compute_slots,
                m.wasted_compute_slots);

    if (cfg.timeline) {
        const long long window = cli.get_int("timeline-window");
        std::printf("\nactivity chart (first %lld slots; P prog, D data, "
                    "C compute, B both, r reclaimed, d down):\n%s",
                    window, timeline.render(0, window).c_str());
    }
    if (cfg.events) {
        std::ofstream out(cli.get_string("events"));
        events.write_csv(out);
        std::printf("\nwrote %zu events to %s\n", events.size(),
                    cli.get_string("events").c_str());
    }
    return m.completed ? 0 : 1;
}
