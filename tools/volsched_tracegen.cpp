/// \file volsched_tracegen.cpp
/// Availability-trace generator: samples per-processor traces from the
/// Markov recipe or the semi-Markov fleets and writes them in the text
/// format that trace::read_traces / examples/trace_replay consume.
///
///   volsched_tracegen --model weibull --procs 20 --slots 100000
///                     --seed 7 --out traces.txt

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "volsched/volsched.hpp"

int main(int argc, char** argv) {
    using namespace volsched;
    util::Cli cli("volsched_tracegen", "generate availability traces");
    cli.add_string("model", "markov", "markov|weibull|lognormal");
    cli.add_int("procs", 20, "number of processors");
    cli.add_int("slots", 100000, "trace length in slots");
    cli.add_int("seed", 7, "master seed");
    cli.add_int("mean-up", 120, "mean UP sojourn (semi-Markov models)");
    cli.add_string("out", "", "output path (default: stdout)");
    cli.add_flag("stats", "print per-trace occupancy statistics to stderr");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    const int p = static_cast<int>(cli.get_int("procs"));
    const auto slots = static_cast<std::size_t>(cli.get_int("slots"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto& model = cli.get_string("model");
    const double mean_up = static_cast<double>(cli.get_int("mean-up"));

    util::Rng rng(util::mix_seed(seed, 0x7247ULL));
    std::vector<trace::RecordedTrace> traces;
    for (int q = 0; q < p; ++q) {
        std::unique_ptr<markov::AvailabilityModel> proto;
        if (model == "markov") {
            proto = std::make_unique<markov::MarkovAvailability>(
                markov::generate_chain(rng));
        } else if (model == "weibull") {
            proto = std::make_unique<trace::SemiMarkovAvailability>(
                trace::desktop_grid_params(mean_up * rng.uniform(0.5, 1.5)));
        } else if (model == "lognormal") {
            proto = std::make_unique<trace::SemiMarkovAvailability>(
                trace::desktop_grid_params_lognormal(mean_up *
                                                     rng.uniform(0.5, 1.5)));
        } else {
            std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
            return 2;
        }
        traces.push_back(trace::record(*proto, slots, rng));
        if (cli.get_flag("stats")) {
            const auto st = trace::analyze(traces.back());
            std::fprintf(stderr,
                         "proc %2d: up %.1f%%  reclaimed %.1f%%  down %.1f%%"
                         "  mean up-run %.1f\n",
                         q, 100 * st.occupancy[0], 100 * st.occupancy[1],
                         100 * st.occupancy[2], st.mean_interval[0]);
        }
    }

    if (const auto& path = cli.get_string("out"); !path.empty()) {
        std::ofstream out(path);
        trace::write_traces(out, traces);
        std::fprintf(stderr, "wrote %d traces x %zu slots to %s\n", p, slots,
                     path.c_str());
    } else {
        trace::write_traces(std::cout, traces);
    }
    return 0;
}
