/// \file volsched_campaign.cpp
/// Campaign driver for paper-scale (and beyond) sweeps: shard the Table-1
/// grid across machines, stream per-instance records to durable JSONL/CSV
/// sinks, checkpoint progress, resume after interruption, and merge shard
/// outputs into the paper's dfb tables — bit-identically to an unsharded
/// in-memory sweep.
///
///   volsched_campaign run    --out camp --shard 1/4 --scenarios 247 --trials 10
///   volsched_campaign run    --out camp --shard 1/4        # again: resumes
///   volsched_campaign run    --out camp --parallel 4       # all 4 in-process
///   volsched_campaign status --out camp
///   volsched_campaign merge  --out camp --breakdown
///   volsched_campaign query  --out camp --wmin 2-4 --tasks 10
///   volsched_campaign run    --out smoke --smoke            # tiny CI grid
///
/// Every shard directory (<out>/shard-k-of-N/) is self-describing: the
/// first JSONL line carries the full grid configuration and a fingerprint,
/// so merge, status, and query need no flags beyond --out.  See API.md
/// ("Campaigns") for the sharding, resume, and index contracts.
///
/// All wall-clock access (progress rate/ETA) goes through obs/stopwatch —
/// the rulebook's one sanctioned monotonic-clock seam; nothing here feeds
/// records or tables.

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "report.hpp" // bench/: shared dfb-table rendering
#include "volsched/volsched.hpp"

namespace {

using namespace volsched;

/// Strict integer parse: the whole token must be digits ("5.10" or "1x"
/// must error out, not silently truncate to a different campaign).
bool parse_int_strict(std::string_view text, int& out) {
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && end == text.data() + text.size();
}

bool parse_int_list(const std::string& text, std::vector<int>& out) {
    out.clear();
    for (const auto& item : util::split_list(text)) {
        int value = 0;
        if (!parse_int_strict(item, value)) return false;
        out.push_back(value);
    }
    return !out.empty();
}

bool parse_shard(const std::string& text, int& index, int& count) {
    const auto slash = text.find('/');
    if (slash == std::string::npos) return false;
    return parse_int_strict(std::string_view(text).substr(0, slash), index) &&
           parse_int_strict(std::string_view(text).substr(slash + 1), count);
}

bool parse_ll_strict(std::string_view text, long long& out) {
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && end == text.data() + text.size();
}

/// Inclusive range flag: "7" (a single value) or "2-5".
bool parse_range(const std::string& text, long long& lo, long long& hi) {
    const auto dash = text.find('-', 1); // a leading '-' is just a sign
    if (dash == std::string::npos) {
        if (!parse_ll_strict(text, lo)) return false;
        hi = lo;
        return true;
    }
    return parse_ll_strict(std::string_view(text).substr(0, dash), lo) &&
           parse_ll_strict(std::string_view(text).substr(dash + 1), hi) &&
           lo <= hi;
}

/// Rate-limited progress line with throughput, ETA, and — when the process
/// registry carries the campaign pipeline gauges — emitter lag and
/// run-ahead window occupancy.  report() is invoked concurrently from
/// worker threads (see SweepConfig::progress); an atomic last-print stamp
/// admits one printer per interval without a lock, and the instance count
/// at the first report anchors the rate so resumed work is not counted as
/// instantaneous progress.
class ProgressPrinter {
public:
    void report(long long done, long long total) {
        const long long ms = watch_.elapsed_ms();
        long long base = base_done_.load(std::memory_order_relaxed);
        if (base < 0) {
            base_done_.compare_exchange_strong(base, done - 1);
            base = base_done_.load(std::memory_order_relaxed);
        }
        const bool final = done == total;
        if (!final) {
            long long last = last_print_ms_.load(std::memory_order_relaxed);
            if (ms - last < kIntervalMs) return;
            if (!last_print_ms_.compare_exchange_strong(last, ms)) return;
        }
        // Pipeline occupancy from the process registry: how far the
        // workers run ahead of the emitter (lag, of window capacity) and
        // how many finished jobs await emission (queue).
        char pipe[64] = "";
        if (obs::Registry* reg = obs::Registry::active()) {
            const long long lag = reg->gauge("campaign.emitter_lag").value();
            const long long window = reg->gauge("campaign.window").value();
            const long long queue =
                reg->gauge("campaign.queue_depth").value();
            if (window > 0)
                std::snprintf(pipe, sizeof pipe,
                              "lag %lld/%lld  queue %lld  ", lag, window,
                              queue);
        }
        const double secs = static_cast<double>(ms) / 1000.0;
        const double rate =
            secs > 0.0 ? static_cast<double>(done - base) / secs : 0.0;
        if (rate > 0.0 && total > done)
            std::fprintf(stderr,
                         "\r%lld/%lld instances  %.1f/s  %sETA %llds  ",
                         done, total, rate, pipe,
                         static_cast<long long>(
                             static_cast<double>(total - done) / rate));
        else
            std::fprintf(stderr, "\r%lld/%lld instances  %s", done, total,
                         pipe);
        if (final) std::fputc('\n', stderr);
    }

private:
    static constexpr long long kIntervalMs = 500;
    obs::Stopwatch watch_;
    std::atomic<long long> last_print_ms_{-kIntervalMs};
    std::atomic<long long> base_done_{-1};
};

void print_tables(const exp::SweepResult& result, bool breakdown) {
    benchtool::print_dfb_table("overall — all problem instances",
                               result.heuristics, result.overall,
                               /*show_wins=*/true);
    if (!breakdown) return;
    for (const auto& [wmin, table] : result.by_wmin)
        benchtool::print_dfb_table("by wmin = " + std::to_string(wmin),
                                   result.heuristics, table,
                                   /*show_wins=*/false);
    for (const auto& [n, table] : result.by_tasks)
        benchtool::print_dfb_table("by n = " + std::to_string(n),
                                   result.heuristics, table,
                                   /*show_wins=*/false);
    for (const auto& [ncom, table] : result.by_ncom)
        benchtool::print_dfb_table("by ncom = " + std::to_string(ncom),
                                   result.heuristics, table,
                                   /*show_wins=*/false);
    // A single-key map is the classic checkpoint-free grid; a breakdown
    // line per policy only makes sense when the axis was swept.
    if (result.by_checkpoint.size() > 1)
        for (const auto& [ckpt, table] : result.by_checkpoint)
            benchtool::print_dfb_table("by checkpoint = " + ckpt,
                                       result.heuristics, table,
                                       /*show_wins=*/false);
}

int cmd_run(int argc, char** argv) {
    util::Cli cli("volsched_campaign run",
                  "run (or resume) one shard of a sweep campaign");
    cli.add_string("out", "", "campaign root directory (required)");
    cli.add_string("shard", "1/1", "this machine's shard, as k/N");
    cli.add_string("heuristics", "all",
                   "comma-separated specs, or 'all' / 'greedy'");
    cli.add_string("tasks", "5,10,20,40", "tasks-per-iteration axis (n)");
    cli.add_string("ncom", "5,10,20", "master concurrency axis");
    cli.add_string("wmin", "1,2,3,4,5,6,7,8,9,10", "wmin axis");
    cli.add_int("scenarios", 3, "scenario draws per grid cell");
    cli.add_int("trials", 3, "trials per scenario");
    cli.add_int("procs", 20, "processors per platform");
    cli.add_int("iterations", 10, "iterations per run");
    cli.add_int("replicas", 2, "extra replica cap per task");
    cli.add_double("tdata", 1.0, "Tdata = tdata * wmin");
    cli.add_double("tprog", 5.0, "Tprog = tprog * wmin");
    cli.add_string("checkpoints", "none",
                   "comma-separated checkpoint-policy axis, e.g. "
                   "'none,daly,periodic20'");
    cli.add_int("checkpoint-cost", 1,
                "master transfer slots per checkpoint upload");
    cli.add_int("seed", 0xC0FFEE, "master seed");
    cli.add_int("threads", 0, "worker threads (0: hardware)");
    // "checkpoint-every" (the durable-manifest cadence, matching
    // CampaignBuilder::checkpoint_every) is deliberately distinct from the
    // --checkpoints/--checkpoint-cost recovery-policy flags above.
    cli.add_int("checkpoint-every", 8, "jobs per durable manifest checkpoint");
    cli.add_int("batches", 0, "stop after this many checkpoints (0: all)");
    cli.add_int("parallel", 0,
                "drive all N shards of an N-way campaign from this process "
                "over one shared worker pool (replaces --shard; 0: off)");
    cli.add_flag("barrier-loop",
                 "use the historical per-batch barrier loop instead of the "
                 "streaming pipeline (A/B debugging; outputs are "
                 "byte-identical)");
    cli.add_int("pipeline-window", 0,
                "pipeline run-ahead bound in jobs (0: auto-size to "
                "max(checkpoint cadence, 2 x pool size))");
    cli.add_flag("no-event-core",
                 "step every slot through the reference loop instead of the "
                 "event-driven core (results are identical either way)");
    cli.add_flag("csv", "also stream records.csv");
    cli.add_flag("fresh", "discard previous output instead of resuming");
    cli.add_flag("quiet", "no progress output");
    cli.add_flag("smoke", "tiny fixed CI grid; overrides the axes, "
                          "heuristics, counts, and checkpoint cadence");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    if (cli.get_string("out").empty()) {
        std::fprintf(stderr, "run: --out is required\n");
        return 2;
    }

    api::ExperimentBuilder experiment;
    try {
        experiment.heuristic_set(cli.get_string("heuristics"));
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    std::vector<int> tasks, ncom, wmin;
    if (!parse_int_list(cli.get_string("tasks"), tasks) ||
        !parse_int_list(cli.get_string("ncom"), ncom) ||
        !parse_int_list(cli.get_string("wmin"), wmin)) {
        std::fprintf(stderr, "run: --tasks/--ncom/--wmin want comma-separated "
                             "integers\n");
        return 2;
    }

    experiment.tasks(tasks)
        .ncom(ncom)
        .wmin(wmin)
        .processors(static_cast<int>(cli.get_int("procs")))
        .scenarios_per_cell(static_cast<int>(cli.get_int("scenarios")))
        .trials(static_cast<int>(cli.get_int("trials")))
        .iterations(static_cast<int>(cli.get_int("iterations")))
        .replica_cap(static_cast<int>(cli.get_int("replicas")))
        .tdata_factor(cli.get_double("tdata"))
        .tprog_factor(cli.get_double("tprog"))
        .seed(static_cast<std::uint64_t>(cli.get_int("seed")))
        .threads(static_cast<std::size_t>(cli.get_int("threads")))
        .event_driven(!cli.get_flag("no-event-core"));

    const auto ckpt_specs = util::split_list(cli.get_string("checkpoints"));
    if (ckpt_specs.empty()) {
        std::fprintf(stderr,
                     "run: --checkpoints names no policy specs\n");
        return 2;
    }
    try {
        experiment
            .checkpoints(ckpt_specs)
            .checkpoint_cost(static_cast<int>(cli.get_int("checkpoint-cost")));
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    if (cli.get_flag("smoke")) {
        experiment.heuristics({"mct", "emct"})
            .tasks({3})
            .ncom({2})
            .wmin({1, 2})
            .processors(4)
            .scenarios_per_cell(2)
            .trials(2)
            .iterations(2);
    }

    int shard_index = 1, shard_count = 1;
    if (!parse_shard(cli.get_string("shard"), shard_index, shard_count)) {
        std::fprintf(stderr, "run: --shard wants k/N, e.g. --shard 2/4\n");
        return 2;
    }
    const int parallel = static_cast<int>(cli.get_int("parallel"));
    if (parallel < 0) {
        std::fprintf(stderr, "run: --parallel wants a shard count >= 1\n");
        return 2;
    }
    if (parallel > 0 && (shard_index != 1 || shard_count != 1)) {
        std::fprintf(stderr, "run: --parallel drives every shard; it cannot "
                             "be combined with --shard\n");
        return 2;
    }
    if (parallel > 0 && cli.get_flag("barrier-loop")) {
        std::fprintf(stderr, "run: --barrier-loop cannot share a worker "
                             "pool; it is incompatible with --parallel\n");
        return 2;
    }

    // Process-wide metrics registry: feeds the progress line's pipeline
    // occupancy and the per-shard status.json heartbeats.  Observer-only —
    // installing it cannot change any record or table (pinned by the
    // trace/no-trace identity tests).
    static obs::Registry registry;
    obs::Registry::install(&registry);

    try {
        auto campaign = experiment.campaign()
                            .directory(cli.get_string("out"))
                            .shard(shard_index, shard_count)
                            .checkpoint_every(cli.get_flag("smoke")
                                                  ? 2
                                                  : static_cast<int>(
                                                        cli.get_int(
                                                            "checkpoint-every")))
                            .csv(cli.get_flag("csv"))
                            .stop_after_batches(
                                static_cast<int>(cli.get_int("batches")))
                            .pipeline(!cli.get_flag("barrier-loop"))
                            .pipeline_window(static_cast<int>(
                                cli.get_int("pipeline-window")))
                            .heartbeat();
        if (cli.get_flag("fresh")) campaign.fresh();
        if (!cli.get_flag("quiet")) {
            auto printer = std::make_shared<ProgressPrinter>();
            campaign.progress([printer](long long done, long long total) {
                printer->report(done, total);
            });
        }

        if (parallel > 0) {
            campaign.parallel(parallel);
            const auto outcome = campaign.run_parallel();
            for (std::size_t k = 0; k < outcome.shards.size(); ++k) {
                const auto& shard = outcome.shards[k];
                std::printf("shard %zu/%d: %lld/%lld jobs "
                            "(%lld instances) -> %s\n",
                            k + 1, parallel, shard.jobs_done,
                            shard.jobs_total, shard.instances_done,
                            shard.jsonl_path.string().c_str());
            }
            std::printf("campaign: %lld/%lld jobs (%lld instances) across "
                        "%d in-process shards\n",
                        outcome.jobs_done, outcome.jobs_total,
                        outcome.instances_done, parallel);
            if (!outcome.complete) {
                std::printf("stopped at a checkpoint; re-run the same "
                            "command to continue\n");
                return 3;
            }
            std::printf("all shards complete\n");
            return 0;
        }

        const auto outcome = campaign.run();
        std::printf("shard %d/%d: %lld/%lld jobs (%lld instances) -> %s\n",
                    shard_index, shard_count, outcome.jobs_done,
                    outcome.jobs_total, outcome.instances_done,
                    outcome.jsonl_path.string().c_str());
        if (!outcome.complete) {
            std::printf("stopped at a checkpoint; re-run the same command "
                        "to continue\n");
            return 3;
        }
        std::printf("shard complete\n");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

int cmd_query(int argc, char** argv) {
    util::Cli cli("volsched_campaign query",
                  "select records by grid axes through the sidecar index");
    cli.add_string("out", "", "campaign root directory (required)");
    cli.add_string("ordinal", "",
                   "scenario-ordinal filter, N or A-B (inclusive)");
    cli.add_string("wmin", "", "wmin filter, N or A-B (inclusive)");
    cli.add_string("tasks", "", "tasks-per-iteration filter, N or A-B");
    cli.add_string("ncom", "", "master-concurrency filter, N or A-B");
    cli.add_flag("csv", "emit a CSV table instead of raw JSONL lines");
    cli.add_string("output", "", "write records here instead of stdout");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    if (cli.get_string("out").empty()) {
        std::fprintf(stderr, "query: --out is required\n");
        return 2;
    }

    exp::QueryFilter filter;
    const auto axis = [&](const char* name,
                          auto& slot) -> bool { // false on a bad flag
        const std::string& text = cli.get_string(name);
        if (text.empty()) return true;
        long long lo = 0, hi = 0;
        if (!parse_range(text, lo, hi) || lo < 0) {
            std::fprintf(stderr,
                         "query: --%s wants N or A-B (non-negative, "
                         "inclusive)\n",
                         name);
            return false;
        }
        using limit_t = decltype(slot->first);
        slot.emplace(static_cast<limit_t>(lo), static_cast<limit_t>(hi));
        return true;
    };
    if (!axis("ordinal", filter.ordinal) || !axis("wmin", filter.wmin) ||
        !axis("tasks", filter.tasks) || !axis("ncom", filter.ncom))
        return 2;

    try {
        const auto dirs =
            exp::find_shard_directories(cli.get_string("out"));
        if (dirs.empty()) {
            std::fprintf(stderr, "query: no shard directories under '%s'\n",
                         cli.get_string("out").c_str());
            return 1;
        }
        std::vector<std::filesystem::path> files;
        files.reserve(dirs.size());
        for (const auto& dir : dirs) files.push_back(dir / "records.jsonl");

        std::FILE* dest = stdout;
        if (const auto& path = cli.get_string("output"); !path.empty()) {
            dest = std::fopen(path.c_str(), "wb");
            if (!dest) {
                std::fprintf(stderr, "query: cannot open '%s'\n",
                             path.c_str());
                return 1;
            }
        }

        const bool as_csv = cli.get_flag("csv");
        bool with_checkpoint = false;
        if (as_csv) {
            // The self-describing shard header names the heuristic columns.
            std::ifstream first(files.front());
            std::string header_line;
            std::getline(first, header_line);
            const auto header = exp::parse_campaign_header(header_line);
            with_checkpoint =
                header.sweep.checkpoint_values.size() != 1 ||
                header.sweep.checkpoint_values.front() != "none";
            std::fprintf(dest, "%s\n",
                         exp::CsvSink::header_row(header.heuristics,
                                                  with_checkpoint)
                             .c_str());
        }

        const auto stats = exp::query_shards(
            files, filter, [&](const std::string& line) {
                if (as_csv) {
                    const auto rec = exp::JsonlSink::parse_record(line);
                    std::fprintf(dest, "%s\n",
                                 exp::CsvSink::format_row(rec,
                                                          with_checkpoint)
                                     .c_str());
                } else {
                    std::fprintf(dest, "%s\n", line.c_str());
                }
            });
        if (dest != stdout) std::fclose(dest);
        std::fprintf(stderr, "matched %llu record(s) across %zu shard(s)",
                     static_cast<unsigned long long>(stats.matched),
                     files.size());
        if (stats.indexes_rebuilt > 0)
            std::fprintf(stderr, "; rebuilt %d stale or missing index(es)",
                         stats.indexes_rebuilt);
        std::fputc('\n', stderr);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

int cmd_merge(int argc, char** argv) {
    util::Cli cli("volsched_campaign merge",
                  "combine shard outputs into the paper's dfb tables");
    cli.add_string("out", "", "campaign root directory (required)");
    cli.add_flag("breakdown", "also print by-wmin/by-n/by-ncom tables");
    cli.add_string("csv", "", "write the overall table to this CSV path");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    if (cli.get_string("out").empty()) {
        std::fprintf(stderr, "merge: --out is required\n");
        return 2;
    }

    try {
        const auto dirs =
            exp::find_shard_directories(cli.get_string("out"));
        if (dirs.empty()) {
            std::fprintf(stderr,
                         "merge: no shard directories under '%s'\n",
                         cli.get_string("out").c_str());
            return 1;
        }
        std::vector<std::filesystem::path> files;
        files.reserve(dirs.size());
        for (const auto& dir : dirs) files.push_back(dir / "records.jsonl");
        const auto result = exp::merge_shards(files);
        std::printf("merged %zu shard(s), %lld instances\n\n", files.size(),
                    result.overall.instances());
        print_tables(result, cli.get_flag("breakdown"));
        if (const auto& path = cli.get_string("csv"); !path.empty())
            benchtool::write_dfb_csv(path, result.heuristics,
                                     result.overall);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

int cmd_status(int argc, char** argv) {
    util::Cli cli("volsched_campaign status",
                  "show per-shard progress from the checkpoint manifests");
    cli.add_string("out", "", "campaign root directory (required)");
    if (!cli.parse(argc, argv)) return cli.exit_code();

    if (cli.get_string("out").empty()) {
        std::fprintf(stderr, "status: --out is required\n");
        return 2;
    }

    const auto dirs = exp::find_shard_directories(cli.get_string("out"));
    if (dirs.empty()) {
        std::fprintf(stderr, "status: no shard directories under '%s'\n",
                     cli.get_string("out").c_str());
        return 1;
    }

    // Two sources per shard: the durable MANIFEST (checkpointed truth) and
    // the live status.json heartbeat (exp/status.hpp), which also carries
    // pipeline occupancy and stage wall-times.  A missing heartbeat is
    // normal (old runs, heartbeat off) and renders as "-".
    util::TextTable table({"shard", "jobs", "instances", "jsonl bytes",
                           "state", "heartbeat", "lag/win", "queue",
                           "avg run us"});
    for (std::size_t c = 1; c < 4; ++c) table.align_right(c);
    for (std::size_t c = 6; c < 9; ++c) table.align_right(c);
    long long done_total = 0, jobs_total = 0;
    bool all_complete = true;
    int shard_count = 0;
    for (const auto& dir : dirs) {
        std::string hb_state = "-", hb_pipe = "-", hb_queue = "-",
                    hb_run = "-";
        if (const auto status = exp::read_status(dir)) {
            hb_state = status->state;
            hb_pipe = std::to_string(status->emitter_lag) + "/" +
                      std::to_string(status->window);
            hb_queue = std::to_string(status->queue_depth);
            if (status->run.count > 0)
                hb_run =
                    std::to_string(status->run.total_us / status->run.count);
        }
        const auto manifest = exp::read_manifest(dir);
        if (!manifest) {
            table.add_row({dir.filename().string(), "-", "-", "-",
                           "no manifest", hb_state, hb_pipe, hb_queue,
                           hb_run});
            all_complete = false;
            continue;
        }
        shard_count = manifest->shard_count;
        done_total += manifest->jobs_done;
        jobs_total += manifest->jobs_total;
        all_complete = all_complete && manifest->complete;
        table.add_row({dir.filename().string(),
                       std::to_string(manifest->jobs_done) + "/" +
                           std::to_string(manifest->jobs_total),
                       std::to_string(manifest->instances_done),
                       std::to_string(manifest->jsonl_bytes),
                       manifest->complete ? "complete" : "running", hb_state,
                       hb_pipe, hb_queue, hb_run});
    }
    if (static_cast<int>(dirs.size()) < shard_count) {
        table.add_row({std::to_string(shard_count -
                                      static_cast<int>(dirs.size())) +
                           " shard(s)",
                       "-", "-", "-", "not started", "-", "-", "-", "-"});
        all_complete = false;
    }
    std::printf("%s", table.render("campaign " + cli.get_string("out"))
                          .c_str());
    if (jobs_total > 0)
        std::printf("%.1f%% of the started shards' jobs done\n",
                    100.0 * static_cast<double>(done_total) /
                        static_cast<double>(jobs_total));
    std::printf(all_complete ? "all shards complete — ready to merge\n"
                             : "campaign incomplete\n");
    return 0;
}

void usage() {
    std::puts("volsched_campaign — sharded, resumable sweep campaigns\n"
              "\n"
              "subcommands:\n"
              "  run     run (or resume) one shard (or, with --parallel N,\n"
              "          all N shards in-process); writes\n"
              "          <out>/shard-k-of-N/{records.jsonl,records.idx,\n"
              "          MANIFEST}\n"
              "  merge   combine all shard outputs into the dfb tables\n"
              "  status  per-shard progress from the checkpoint manifests\n"
              "  query   select records by ordinal/wmin/tasks/ncom ranges\n"
              "          through the sidecar index, as JSONL or CSV\n"
              "\n"
              "volsched_campaign <subcommand> --help lists its options.\n"
              "The sharding, resume, and index contracts are documented in\n"
              "API.md (\"Campaigns\").");
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        usage();
        return argc < 2 ? 2 : 0;
    }
    const std::string cmd = argv[1];
    if (cmd == "run") return cmd_run(argc - 1, argv + 1);
    if (cmd == "merge") return cmd_merge(argc - 1, argv + 1);
    if (cmd == "status") return cmd_status(argc - 1, argv + 1);
    if (cmd == "query") return cmd_query(argc - 1, argv + 1);
    std::fprintf(stderr, "unknown subcommand '%s'\n\n", argv[1]);
    usage();
    return 2;
}
