#!/usr/bin/env bash
# Run the curated .clang-tidy profile over the volsched library sources
# using a compile_commands.json export.  Part of the static-analysis gate
# (see BUILDING.md "Static analysis & sanitizers").
#
# Usage: scripts/run_clang_tidy.sh [BUILD_DIR] [--require]
#
#   BUILD_DIR   directory containing compile_commands.json
#               (default: build/release, then build)
#   --require   fail (exit 3) when clang-tidy is not installed instead of
#               skipping with a notice — CI passes this, local runs may not
#               have clang-tidy and should not hard-fail.
#
# Findings exit 1 (WarningsAsErrors: '*' in .clang-tidy promotes every
# enabled check).  The scan covers src/ — the library is the record-producing
# surface; tools/bench/examples are covered by -Wall/-Werror and
# tools/volsched_lint.
set -u -o pipefail

cd "$(dirname "$0")/.."

require=0
build_dir=""
for arg in "$@"; do
    case "$arg" in
        --require) require=1 ;;
        *) build_dir="$arg" ;;
    esac
done

if [ -z "$build_dir" ]; then
    for candidate in build/release build; do
        if [ -f "$candidate/compile_commands.json" ]; then
            build_dir="$candidate"
            break
        fi
    done
fi

if [ -z "${build_dir}" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy: no compile_commands.json found (configure a build" \
         "first: cmake --preset release)" >&2
    exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
    if [ "$require" -eq 1 ]; then
        echo "run_clang_tidy: $tidy not found and --require given" >&2
        exit 3
    fi
    echo "run_clang_tidy: $tidy not installed; skipping (pass --require to" \
         "make this an error)"
    exit 0
fi

echo "run_clang_tidy: $($tidy --version | head -n 1) over src/ using" \
     "$build_dir/compile_commands.json"

# One invocation over all library TUs; clang-tidy parallelizes poorly per
# process, so prefer run-clang-tidy when present (it shards across cores).
mapfile -t sources < <(find src -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
    # run-clang-tidy treats arguments as regexes matched against the
    # absolute TU path, so the repo-relative paths act as substring filters.
    run-clang-tidy -quiet -p "$build_dir" "${sources[@]}" \
        > /tmp/clang_tidy_out.txt 2>&1
    status=$?
    # run-clang-tidy echoes every command line; keep only diagnostics.
    grep -Ev "^(clang-tidy|Applying fixes|[0-9]+ warnings? generated)" \
        /tmp/clang_tidy_out.txt | sed '/^$/d' || true
else
    "$tidy" -quiet -p "$build_dir" "${sources[@]}"
    status=$?
fi

if [ "$status" -ne 0 ]; then
    echo "run_clang_tidy: findings above must be fixed (or the check" \
         "curated in .clang-tidy — never suppressed per-site with NOLINT" \
         "without a reason)"
    exit 1
fi
echo "run_clang_tidy: clean"
