#!/usr/bin/env bash
# Verifies that every relative link in the repo's markdown files points at
# an existing file or directory.  External (http/mailto) links are skipped.
# Run from the repository root; exits non-zero listing every broken link.
set -u

status=0
for md in $(git ls-files '*.md'); do
    dir=$(dirname "$md")
    while IFS= read -r link; do
        [ -z "$link" ] && continue
        case "$link" in
            http://* | https://* | mailto:*) continue ;;
        esac
        target=${link%%#*} # drop a #fragment
        [ -z "$target" ] && continue
        if [ ! -e "$dir/$target" ]; then
            echo "broken link in $md: $link"
            status=1
        fi
    done < <(
        # Drop fenced code blocks and inline code spans first — C++ lambda
        # syntax ("[&](args)") would otherwise read as a markdown link.
        awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$md" |
            sed -E 's/`[^`]*`//g' |
            grep -oE '\[[^]]*\]\([^)]+\)' |
            sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/'
    )
done

if [ "$status" -eq 0 ]; then
    echo "all intra-repo markdown links resolve"
fi
exit $status
