#!/usr/bin/env python3
"""Compare a fresh bench JSON (bench/report.hpp schema) against the newest
committed BENCH_*.json perf-trajectory data point and warn on regressions.

Usage:
    scripts/bench_compare.py NEW.json [--repo DIR] [--threshold PCT]
                             [--strict]

The committed baseline is the lexicographically newest BENCH_*.json in the
repository root (the files are date-named, so newest name == newest data
point).  Benchmarks are matched by name; for each match, slots_per_sec
dropping more than --threshold percent (default 20) below the baseline
counts as a regression.  Regressions are reported as warnings — CI smoke
runners are noisy shared machines, so the default exit code stays 0; pass
--strict to turn regressions into a nonzero exit.

Benchmarks present on only one side are listed informationally and never
fail the comparison (new benchmarks appear, old ones get renamed).  A
baseline entry whose slots_per_sec is zero or missing is likewise reported
as incomparable (treated like a new benchmark) instead of being silently
skipped.
"""

import argparse
import contextlib
import glob
import io
import json
import os
import sys
import tempfile


def load_results(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("volsched_bench") != 1:
        raise SystemExit(f"error: {path} is not a volsched bench JSON "
                         "(missing volsched_bench=1)")
    return doc.get("bench", "?"), {r["name"]: r for r in doc["results"]}


def newest_baseline(repo):
    candidates = sorted(glob.glob(os.path.join(repo, "BENCH_*.json")))
    return candidates[-1] if candidates else None


def run_compare(args):
    baseline_path = newest_baseline(args.repo)
    if baseline_path is None:
        print("bench_compare: no committed BENCH_*.json baseline; "
              "nothing to compare against")
        return 0

    base_tool, base = load_results(baseline_path)
    new_tool, new = load_results(args.new_json)
    print(f"bench_compare: {args.new_json} ({new_tool}) vs "
          f"{os.path.basename(baseline_path)} ({base_tool}), "
          f"threshold {args.threshold:.0f}%")

    regressions = []
    incomparable = []
    for name in sorted(set(base) & set(new)):
        old_rate = base[name].get("slots_per_sec", 0.0)
        new_rate = new[name].get("slots_per_sec", 0.0)
        if old_rate <= 0:
            # A zero or missing baseline rate carries no information: the
            # benchmark existed but never produced a usable measurement
            # (crashed runner, truncated JSON).  Say so instead of silently
            # pretending the benchmark was compared.
            incomparable.append(name)
            print(f"  {name:40s} baseline rate missing/zero -> "
                  f"{new_rate:14.0f} (incomparable, treated as new)")
            continue
        delta = 100.0 * (new_rate - old_rate) / old_rate
        marker = ""
        if delta < -args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, delta))
        print(f"  {name:40s} {old_rate:14.0f} -> {new_rate:14.0f} "
              f"({delta:+6.1f}%){marker}")

    only_new = sorted(set(new) - set(base))
    for name in sorted(set(base) - set(new)):
        print(f"  {name:40s} only in baseline")
    for name in only_new:
        print(f"  {name:40s} only in new run (no baseline yet)")
    if incomparable or only_new:
        print(f"bench_compare: {len(only_new)} new benchmark(s), "
              f"{len(incomparable)} with unusable baseline — none of these "
              "count toward regressions")

    if regressions:
        print(f"\n::warning::bench_compare: {len(regressions)} benchmark(s) "
              f"regressed more than {args.threshold:.0f}% vs "
              f"{os.path.basename(baseline_path)}: " +
              ", ".join(f"{n} ({d:+.1f}%)" for n, d in regressions))
        if args.strict:
            return 1
    else:
        print("no regressions beyond the threshold")
    return 0


def self_test():
    """Exercise the zero-rate-baseline, new-benchmark, regression, and
    missing-baseline paths against synthesized fixtures — no committed
    BENCH_*.json needed.  Mirrors what the CI lint job asserts."""
    failures = []

    def expect(cond, what):
        print(("  ok  " if cond else "  FAIL") + f"  {what}")
        if not cond:
            failures.append(what)

    def record(name, rate):
        return {"name": name, "iterations": 1, "wall_seconds": 1.0,
                "slots_per_sec": rate}

    def doc(*results):
        return {"volsched_bench": 1, "bench": "bench_engine",
                "results": list(results)}

    def compare(tmp, baseline, new, strict=False, threshold=20.0):
        if baseline is not None:
            with open(os.path.join(tmp, "BENCH_2000-01-01.json"), "w",
                      encoding="utf-8") as f:
                json.dump(baseline, f)
        new_path = os.path.join(tmp, "new.json")
        with open(new_path, "w", encoding="utf-8") as f:
            json.dump(new, f)
        args = argparse.Namespace(new_json=new_path, repo=tmp,
                                  threshold=threshold, strict=strict)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = run_compare(args)
        return rc, out.getvalue()

    with tempfile.TemporaryDirectory(prefix="bench_compare_st.") as tmp:
        rc, out = compare(
            tmp,
            baseline=doc(record("engine/zero-rate", 0.0),
                         record("engine/renamed-away", 100.0)),
            new=doc(record("engine/zero-rate", 123.0),
                    record("engine/brand-new", 456.0)),
            strict=True)
        expect(rc == 0, "zero-rate/new-only baselines exit 0 under --strict")
        expect("incomparable" in out, "zero-rate baseline called incomparable")
        expect("only in new run" in out, "new-only benchmark reported")
        expect("only in baseline" in out, "renamed-away benchmark reported")
        expect("none of these count toward regressions" in out,
               "incomparable summary line printed")
        expect("no regressions beyond the threshold" in out,
               "clean verdict printed")

    with tempfile.TemporaryDirectory(prefix="bench_compare_st.") as tmp:
        rc, out = compare(tmp,
                          baseline=doc(record("engine/hot", 1000.0)),
                          new=doc(record("engine/hot", 500.0)),
                          strict=True)
        expect(rc == 1, "50% regression exits 1 under --strict")
        expect("REGRESSION" in out, "regression marked in the diff")
        rc, _out = compare(tmp,
                           baseline=doc(record("engine/hot", 1000.0)),
                           new=doc(record("engine/hot", 500.0)),
                           strict=False)
        expect(rc == 0, "same regression exits 0 without --strict")

    with tempfile.TemporaryDirectory(prefix="bench_compare_st.") as tmp:
        rc, out = compare(tmp, baseline=None,
                          new=doc(record("engine/hot", 1.0)), strict=True)
        expect(rc == 0, "missing baseline exits 0")
        expect("nothing to compare against" in out,
               "missing baseline reported")

    print(f"bench_compare --self-test: {'FAILED' if failures else 'passed'}")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="diff a bench JSON against the committed baseline")
    parser.add_argument("new_json", nargs="?",
                        help="freshly measured bench JSON")
    parser.add_argument("--repo", default=".",
                        help="repository root holding BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when a regression is found")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise the zero/missing-baseline and "
                             "regression paths against synthesized fixtures")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.new_json is None:
        parser.error("new_json is required unless --self-test is given")
    return run_compare(args)


if __name__ == "__main__":
    sys.exit(main())
