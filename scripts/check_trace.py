#!/usr/bin/env python3
"""check_trace.py — validate a volsched Chrome-trace JSON file.

`volsched_sim --trace-out FILE` (and SimulationBuilder::trace) emit the
Chrome trace-event format that Perfetto / chrome://tracing load.  This
script pins the contract CI relies on, stdlib-only:

  - the document parses as JSON and is {"traceEvents": [...], ...} with
    displayTimeUnit "ms";
  - traceEvents is non-empty, every event carries name/ph/ts/pid/tid;
  - phases are limited to M (metadata), X (complete span), i (instant);
  - all metadata events precede all trace events (viewers honor
    thread_name inconsistently otherwise);
  - instants carry scope "t"; complete spans carry an integer dur >= 0;
  - timestamps are monotone in file order (the writer sorts);
  - X spans on one tid never overlap (overlap renders as bogus nesting).

Exit status: 0 valid, 1 violations found, 2 usage/IO error.

Usage:
  scripts/check_trace.py TRACE.json [--min-events N] [-q]
  scripts/check_trace.py --self-test
"""

import argparse
import json
import sys

PHASES = {"M", "X", "i"}
REQUIRED = ("name", "ph", "ts", "pid", "tid")


def validate(doc, min_events):
    """Returns a list of violation strings (empty when valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    if doc.get("displayTimeUnit") != "ms":
        errors.append("displayTimeUnit missing or not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return errors + ["traceEvents missing or not an array"]

    seen_non_meta = 0
    prev_ts = None
    track_end = {}  # tid -> end ts of the last X span on that track
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [k for k in REQUIRED if k not in ev]
        if missing:
            errors.append(f"{where}: missing {', '.join(missing)}")
            continue
        ph = ev["ph"]
        if ph not in PHASES:
            errors.append(f"{where}: unexpected phase {ph!r}")
            continue
        if ph == "M":
            if seen_non_meta:
                errors.append(f"{where}: metadata event after trace events")
            continue
        seen_non_meta += 1
        ts = ev["ts"]
        if not isinstance(ts, int) or ts < 0:
            errors.append(f"{where}: ts {ts!r} is not a non-negative int")
            continue
        if prev_ts is not None and ts < prev_ts:
            errors.append(f"{where}: ts {ts} < previous ts {prev_ts} "
                          f"(file order must be sorted)")
        prev_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errors.append(f"{where}: X span dur {dur!r} is not a "
                              f"non-negative int")
                continue
            tid = ev["tid"]
            end = track_end.get(tid)
            if end is not None and ts < end:
                errors.append(f"{where}: span on tid {tid} starts at {ts} "
                              f"before the previous span ends at {end}")
            track_end[tid] = max(end or 0, ts + dur)
        else:  # instant
            if ev.get("s") != "t":
                errors.append(f"{where}: instant without scope 's':'t'")
    if seen_non_meta < min_events:
        errors.append(f"only {seen_non_meta} trace event(s), expected at "
                      f"least {min_events}")
    return errors


# ---------------------------------------------------------------------------

def _meta(tid, name):
    return {"name": "thread_name", "ph": "M", "ts": 0, "pid": 0, "tid": tid,
            "args": {"name": name}}


def self_test():
    ok = [
        _meta(0, "engine"),
        {"name": "up", "ph": "X", "ts": 0, "pid": 0, "tid": 1, "dur": 5},
        {"name": "sched round", "ph": "i", "ts": 2, "pid": 0, "tid": 0,
         "s": "t"},
        {"name": "up", "ph": "X", "ts": 5, "pid": 0, "tid": 1, "dur": 3},
    ]
    cases = [
        ("valid trace accepted",
         {"traceEvents": ok, "displayTimeUnit": "ms"}, 0),
        ("empty traceEvents rejected",
         {"traceEvents": [], "displayTimeUnit": "ms"}, 1),
        ("missing displayTimeUnit rejected", {"traceEvents": ok}, 1),
        ("unknown phase rejected",
         {"traceEvents": ok + [{"name": "b", "ph": "B", "ts": 9, "pid": 0,
                                "tid": 0}],
          "displayTimeUnit": "ms"}, 1),
        ("missing field rejected",
         {"traceEvents": ok + [{"ph": "i", "ts": 9, "pid": 0, "tid": 0,
                                "s": "t"}],
          "displayTimeUnit": "ms"}, 1),
        ("ts regression rejected",
         {"traceEvents": ok + [{"name": "late", "ph": "i", "ts": 1,
                                "pid": 0, "tid": 0, "s": "t"}],
          "displayTimeUnit": "ms"}, 1),
        ("overlapping spans on one tid rejected",
         {"traceEvents": ok + [{"name": "up", "ph": "X", "ts": 6, "pid": 0,
                                "tid": 1, "dur": 4}],
          "displayTimeUnit": "ms"}, 1),
        ("negative dur rejected",
         {"traceEvents": [_meta(0, "engine"),
                          {"name": "x", "ph": "X", "ts": 0, "pid": 0,
                           "tid": 1, "dur": -1}],
          "displayTimeUnit": "ms"}, 1),
        ("late metadata rejected",
         {"traceEvents": ok + [_meta(5, "late")],
          "displayTimeUnit": "ms"}, 1),
        ("instant without scope rejected",
         {"traceEvents": [_meta(0, "engine"),
                          {"name": "x", "ph": "i", "ts": 0, "pid": 0,
                           "tid": 0}],
          "displayTimeUnit": "ms"}, 1),
    ]
    failures = 0
    for what, doc, want_errors in cases:
        errors = validate(doc, min_events=1)
        passed = bool(errors) == bool(want_errors)
        print(("  ok  " if passed else "  FAIL") + f"  {what}")
        if not passed:
            failures += 1
    print(f"check_trace --self-test: {'FAILED' if failures else 'passed'}")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        prog="check_trace.py",
        description="validate a volsched --trace-out Chrome trace JSON")
    parser.add_argument("trace", nargs="?", help="trace JSON file")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum non-metadata events (default 1)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the validator against synthesized good "
                             "and bad traces")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.trace:
        parser.error("a trace file (or --self-test) is required")

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_trace: cannot read {args.trace}: {e}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print(f"check_trace: {args.trace} is not JSON: {e}", file=sys.stderr)
        return 1

    errors = validate(doc, args.min_events)
    for e in errors:
        print(f"check_trace: {args.trace}: {e}")
    if errors:
        print(f"check_trace: {len(errors)} violation(s)")
        return 1
    if not args.quiet:
        n = len(doc["traceEvents"])
        print(f"check_trace: {args.trace}: {n} events, valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
